//! Differential suite for the incremental round buffer: MSOA (and its
//! fault-injected variant) run with per-seller incremental patching must
//! be **byte-identical** to a cold rebuild of the scaled-bid list every
//! round — same outcomes, same deterministic JSONL traces (event order,
//! every field), including under non-empty fault plans where crashes,
//! blacklisting, and reliability updates dirty sellers mid-run.

#![cfg(feature = "ssam-reference")]

use edge_auction::bid::{Bid, Seller};
use edge_auction::msoa::{
    run_msoa_cold_traced, run_msoa_traced, MsoaConfig, MultiRoundInstance, RoundInput,
};
use edge_auction::recovery::{
    run_msoa_with_faults_cold_traced, run_msoa_with_faults_traced, FaultInjectionConfig, FaultPlan,
    RecoveryConfig,
};
use edge_common::id::{BidId, MicroserviceId};
use edge_telemetry::{Collector, Trace};
use proptest::prelude::*;

/// Multi-round instances that keep the buffer honest: some rounds repeat
/// the same bid list (patching engages), others change it (rebuild
/// path); windows open and close mid-run; capacities bind for some
/// sellers and not others.
fn arb_multi_round() -> impl Strategy<Value = MultiRoundInstance> {
    (
        proptest::collection::vec((4u64..30, 0u64..3, 2u64..6), 2..7), // capacity, window start, window len
        2u64..6,                                                       // rounds
        proptest::collection::vec((1u64..6, 1u32..25), 2..7),          // per-seller (amount, price)
        proptest::collection::vec(0u32..4, 2..6),                      // per-round price jitter
        1u64..8,                                                       // demand
    )
        .prop_filter_map(
            "instance must validate",
            |(seller_specs, rounds, bid_specs, jitter, demand)| {
                let sellers: Vec<Seller> = seller_specs
                    .iter()
                    .enumerate()
                    .map(|(i, &(cap, from, len))| {
                        Seller::new(MicroserviceId::new(i), cap, (from, from + len)).ok()
                    })
                    .collect::<Option<_>>()?;
                let round_inputs: Vec<RoundInput> = (0..rounds)
                    .map(|t| {
                        let bids: Vec<Bid> = bid_specs
                            .iter()
                            .take(sellers.len())
                            .enumerate()
                            .filter_map(|(i, &(amount, price))| {
                                // Jittered rounds submit different prices →
                                // a different bid list → rebuild; the rest
                                // repeat the previous list → patching.
                                let j = jitter.get(t as usize % jitter.len()).copied().unwrap_or(0);
                                Bid::new(
                                    MicroserviceId::new(i),
                                    BidId::new(0),
                                    amount,
                                    f64::from(price + j * u32::from(t % 2 == 0)),
                                )
                                .ok()
                            })
                            .collect();
                        RoundInput::new(demand, demand, bids)
                    })
                    .collect();
                MultiRoundInstance::new(sellers, round_inputs).ok()
            },
        )
}

/// Fault plans aggressive enough to be non-empty on most cases; the
/// second component toggles recovery on/off.
fn arb_fault_inputs() -> impl Strategy<Value = (u64, u64)> {
    (0u64..1_000_000, 0u64..2)
}

fn plan_for(instance: &MultiRoundInstance, seed: u64) -> FaultPlan {
    FaultPlan::seeded(
        seed,
        instance.num_rounds(),
        instance.sellers().len(),
        &FaultInjectionConfig {
            default_probability: 0.35,
            crash_probability: 0.2,
            crash_length: 2,
            dropout_probability: 0.1,
            ..FaultInjectionConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Incremental MSOA ≡ cold-rebuild MSOA: outcome and full trace.
    #[test]
    fn incremental_matches_cold_msoa(instance in arb_multi_round()) {
        let config = MsoaConfig::pinned(2.0);
        let warm_c = Collector::new();
        let warm = run_msoa_traced(&instance, &config, Trace::new(&warm_c));
        let cold_c = Collector::new();
        let cold = run_msoa_cold_traced(&instance, &config, Trace::new(&cold_c));
        match (warm, cold) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => prop_assert_eq!(format!("{a:?}"), format!("{b:?}")),
            (a, b) => return Err(format!("divergent results: {a:?} vs {b:?}")),
        }
        prop_assert_eq!(warm_c.deterministic_jsonl(), cold_c.deterministic_jsonl());
    }

    /// Same under injected faults: crashes, defaults, blacklisting, and
    /// reliability-scaled prices all flow through the seller context, so
    /// patched rounds must still match a cold rebuild bit-for-bit.
    #[test]
    fn incremental_matches_cold_under_faults(
        (instance, (seed, enabled)) in (arb_multi_round(), arb_fault_inputs())
    ) {
        let config = MsoaConfig::pinned(2.0);
        let plan = plan_for(&instance, seed);
        let recovery = if enabled == 1 {
            RecoveryConfig::default()
        } else {
            RecoveryConfig::disabled()
        };
        let warm_c = Collector::new();
        let warm =
            run_msoa_with_faults_traced(&instance, &config, &plan, &recovery, Trace::new(&warm_c));
        let cold_c = Collector::new();
        let cold = run_msoa_with_faults_cold_traced(
            &instance,
            &config,
            &plan,
            &recovery,
            Trace::new(&cold_c),
        );
        match (warm, cold) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => prop_assert_eq!(format!("{a:?}"), format!("{b:?}")),
            (a, b) => return Err(format!("divergent results: {a:?} vs {b:?}")),
        }
        prop_assert_eq!(warm_c.deterministic_jsonl(), cold_c.deterministic_jsonl());
    }
}

/// Deterministic anchor: a long run with a repeated bid list, where a
/// non-empty plan provably fires (crash every round for seller 0), so
/// the patched path demonstrably crosses crash/blacklist transitions.
#[test]
fn incremental_matches_cold_on_forced_faults() {
    let sellers: Vec<Seller> = (0..4)
        .map(|i| Seller::new(MicroserviceId::new(i), 40, (0, 9)).unwrap())
        .collect();
    let rounds: Vec<RoundInput> = (0..8)
        .map(|_| {
            RoundInput::new(
                4,
                4,
                (0..4)
                    .map(|i| {
                        Bid::new(MicroserviceId::new(i), BidId::new(0), 2, 4.0 + i as f64).unwrap()
                    })
                    .collect(),
            )
        })
        .collect();
    let instance = MultiRoundInstance::new(sellers, rounds).unwrap();
    let config = MsoaConfig::pinned(2.0);
    let mut plan = FaultPlan::empty();
    plan.crashes.push(edge_auction::CrashWindow {
        seller: MicroserviceId::new(0),
        from: 2,
        until: 5,
    });
    plan.defaults.push(edge_auction::DefaultEvent {
        round: 1,
        seller: MicroserviceId::new(1),
        delivered_fraction: 0.25,
    });
    let recovery = RecoveryConfig::default();
    let warm_c = Collector::new();
    let warm =
        run_msoa_with_faults_traced(&instance, &config, &plan, &recovery, Trace::new(&warm_c))
            .unwrap();
    let cold_c = Collector::new();
    let cold =
        run_msoa_with_faults_cold_traced(&instance, &config, &plan, &recovery, Trace::new(&cold_c))
            .unwrap();
    assert_eq!(warm, cold);
    assert_eq!(warm_c.deterministic_jsonl(), cold_c.deterministic_jsonl());
    assert!(
        warm.rounds.iter().any(|r| !r.winners.is_empty()),
        "the forced-fault run still settles winners"
    );
}
