//! Differential suite: the heap-based hot path must be **bit-identical**
//! to the seed's O(n²) scan implementation, which is kept behind the
//! `ssam-reference` feature exactly for this purpose.
//!
//! Both [`SsamOutcome`] and [`MultiBuyerOutcome`] derive `PartialEq`
//! over every field (winners in selection order, exact f64 prices and
//! payments, the Theorem 3 certificate), so a single `assert_eq!` per
//! case checks the whole mechanism output, not just the winner set.

#![cfg(feature = "ssam-reference")]

use edge_auction::bid::Bid;
use edge_auction::multi_buyer::{
    run_ssam_multi, run_ssam_multi_reference, CoverBid, MultiBuyerWsp,
};
use edge_auction::ssam::{run_ssam, run_ssam_reference, SsamConfig};
use edge_auction::wsp::WspInstance;
use edge_common::id::{BidId, MicroserviceId};
use proptest::prelude::*;

/// Instances where sellers submit up to 4 alternative bids, with the
/// full messy range the mechanism accepts: equal prices (tie-breaking),
/// zero prices, offers far above the demand, and single-unit slivers.
fn arb_instance() -> impl Strategy<Value = WspInstance> {
    proptest::collection::vec(proptest::collection::vec((1u64..12, 0u32..25), 1..5), 2..12)
        .prop_flat_map(|groups| {
            let supply: u64 = groups
                .iter()
                .map(|g| g.iter().map(|(a, _)| *a).max().unwrap_or(0))
                .sum();
            (Just(groups), 1u64..=supply.max(1))
        })
        .prop_filter_map("supply must cover demand", |(groups, demand)| {
            let bids: Vec<Bid> = groups
                .iter()
                .enumerate()
                .flat_map(|(s, g)| {
                    g.iter().enumerate().map(move |(j, (amount, price))| {
                        // Integer prices on purpose: collisions are common, so
                        // the (ratio, seller, id) tie-break is exercised hard.
                        Bid::new(
                            MicroserviceId::new(s),
                            BidId::new(j),
                            *amount,
                            f64::from(*price),
                        )
                        .unwrap()
                    })
                })
                .collect();
            WspInstance::new(demand, bids).ok()
        })
}

/// An optional reserve unit price, sometimes binding, sometimes not.
fn arb_config() -> impl Strategy<Value = SsamConfig> {
    (0u32..3, 1u32..60).prop_map(|(kind, r)| SsamConfig {
        reserve_unit_price: match kind {
            0 => None,
            1 => Some(f64::from(r)),           // often binding
            _ => Some(f64::from(r) + 1_000.0), // never binding
        },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// The tentpole invariant: heap SSAM ≡ scan SSAM, entire outcome.
    #[test]
    fn heap_matches_scan_reference((inst, config) in (arb_instance(), arb_config())) {
        let fast = run_ssam(&inst, &config);
        let slow = run_ssam_reference(&inst, &config);
        match (fast, slow) {
            (Ok(fast), Ok(slow)) => prop_assert_eq!(fast, slow),
            (Err(fast), Err(slow)) => {
                prop_assert_eq!(format!("{fast:?}"), format!("{slow:?}"));
            }
            (fast, slow) => {
                return Err(format!("divergent feasibility: {fast:?} vs {slow:?}"));
            }
        }
    }
}

/// Random multi-buyer set-cover instances, including zero-price bids —
/// the case where the stale-entry utility must be recomputed because a
/// zero key is current at *every* utility level.
fn arb_multi_buyer() -> impl Strategy<Value = MultiBuyerWsp> {
    (
        proptest::collection::vec(1u64..5, 2..5), // buyer demands
        proptest::collection::vec(
            proptest::collection::vec((proptest::collection::vec(0u64..4, 4), 0u32..30), 1..3),
            2..7,
        ),
    )
        .prop_filter_map("need at least one valid bid", |(demands, groups)| {
            let buyers: Vec<(MicroserviceId, u64)> = demands
                .iter()
                .enumerate()
                .map(|(b, &x)| (MicroserviceId::new(1000 + b), x))
                .collect();
            let mut bids = Vec::new();
            for (s, g) in groups.iter().enumerate() {
                for (j, (amounts, price)) in g.iter().enumerate() {
                    let coverage: Vec<(MicroserviceId, u64)> = amounts
                        .iter()
                        .take(buyers.len())
                        .enumerate()
                        .map(|(b, &a)| (MicroserviceId::new(1000 + b), a))
                        .collect();
                    if let Ok(bid) = CoverBid::new(
                        MicroserviceId::new(s),
                        BidId::new(j),
                        coverage,
                        f64::from(*price),
                    ) {
                        bids.push(bid);
                    }
                }
            }
            if bids.is_empty() {
                return None;
            }
            MultiBuyerWsp::new(buyers, bids).ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Heap multi-buyer greedy ≡ scan multi-buyer greedy, entire
    /// outcome — winners, per-buyer coverage, payments.
    #[test]
    fn multi_buyer_heap_matches_scan((inst, config) in (arb_multi_buyer(), arb_config())) {
        let fast = run_ssam_multi(&inst, &config);
        let slow = run_ssam_multi_reference(&inst, &config);
        prop_assert_eq!(fast, slow);
    }
}

/// Tests toggling the process-global pricing pool size hold this lock
/// so they do not race each other within the test binary.
static PRICING_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sequential vs multi-threaded pricing must be **byte-identical** —
    /// not just the outcome but the full deterministic trace (event
    /// order, every field, provenance included).
    #[test]
    fn pricing_thread_count_is_unobservable((inst, config) in (arb_instance(), arb_config())) {
        use edge_auction::set_pricing_threads;
        use edge_telemetry::{Collector, Trace};
        let _guard = PRICING_LOCK.lock().unwrap();
        let run_at = |threads: usize| {
            set_pricing_threads(threads);
            let collector = Collector::new();
            let outcome = edge_auction::ssam::run_ssam_traced(&inst, &config, Trace::new(&collector));
            (outcome, collector.deterministic_jsonl())
        };
        let (seq_outcome, seq_trace) = run_at(1);
        for threads in [2usize, 4] {
            let (outcome, trace) = run_at(threads);
            match (&seq_outcome, &outcome) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "outcome diverged at {} threads", threads),
                (Err(a), Err(b)) => prop_assert_eq!(format!("{a:?}"), format!("{b:?}")),
                (a, b) => return Err(format!("divergent feasibility: {a:?} vs {b:?}")),
            }
            prop_assert_eq!(&seq_trace, &trace, "trace diverged at {} threads", threads);
        }
        set_pricing_threads(1);
    }

    /// The shared-prefix replay must reproduce the *full* replay's
    /// thresholds bit-for-bit — payment values and the runner-up
    /// provenance (seller, bid, iteration, unit price, contribution)
    /// recorded in the trace.
    #[test]
    fn shared_prefix_matches_full_replay((inst, config) in (arb_instance(), arb_config())) {
        use edge_auction::ssam::reference::critical_thresholds_full;
        use edge_telemetry::{Collector, Trace, Value};
        let collector = Collector::new();
        let outcome = edge_auction::ssam::run_ssam_traced(&inst, &config, Trace::new(&collector));
        let full = critical_thresholds_full(&inst, &config);
        let (outcome, thresholds) = match (outcome, full) {
            (Ok(o), Ok(t)) => (o, t),
            (Err(a), Err(b)) => {
                prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
                return Ok(());
            }
            (a, b) => return Err(format!("divergent feasibility: {a:?} vs {b:?}")),
        };
        let events = collector.events();
        let payments: Vec<_> = events.iter().filter(|e| e.name == "ssam.payment").collect();
        prop_assert_eq!(payments.len(), thresholds.len());
        prop_assert_eq!(outcome.winners.len(), thresholds.len());
        for ((ev, th), w) in payments.iter().zip(&thresholds).zip(&outcome.winners) {
            let kind = ev.field("kind").and_then(Value::as_str).unwrap();
            let f = |name| ev.field(name).and_then(Value::as_f64).unwrap();
            match th {
                Some((v, Some(src))) => {
                    prop_assert_eq!(kind, "runner_up");
                    prop_assert_eq!(w.payment.value().to_bits(), v.to_bits());
                    prop_assert_eq!(f("source_seller") as usize, src.seller.index());
                    prop_assert_eq!(f("source_bid") as usize, src.bid.index());
                    prop_assert_eq!(f("source_iteration") as u64, src.iteration);
                    prop_assert_eq!(f("source_unit_price").to_bits(), src.unit_price.to_bits());
                    prop_assert_eq!(f("source_contribution") as u64, src.contribution);
                }
                Some((v, None)) => {
                    prop_assert_eq!(kind, "zero");
                    prop_assert_eq!(w.payment.value().to_bits(), v.to_bits());
                }
                None => {
                    prop_assert!(kind == "reserve" || kind == "own_price", "kind {}", kind);
                }
            }
        }
    }
}

/// Deterministic stress: a large all-ties instance (every bid the same
/// unit price) replays the tie-break chain hundreds of levels deep.
#[test]
fn heap_matches_scan_on_mass_ties() {
    let bids: Vec<Bid> = (0..400)
        .map(|s| Bid::new(MicroserviceId::new(s), BidId::new(0), 3, 6.0).unwrap())
        .collect();
    let inst = WspInstance::new(900, bids).unwrap();
    let config = SsamConfig::default();
    let fast = run_ssam(&inst, &config).unwrap();
    let slow = run_ssam_reference(&inst, &config).unwrap();
    assert_eq!(fast, slow);
    assert_eq!(fast.winners.len(), 300);
}
