//! Differential suite: the heap-based hot path must be **bit-identical**
//! to the seed's O(n²) scan implementation, which is kept behind the
//! `ssam-reference` feature exactly for this purpose.
//!
//! Both [`SsamOutcome`] and [`MultiBuyerOutcome`] derive `PartialEq`
//! over every field (winners in selection order, exact f64 prices and
//! payments, the Theorem 3 certificate), so a single `assert_eq!` per
//! case checks the whole mechanism output, not just the winner set.

#![cfg(feature = "ssam-reference")]

use edge_auction::bid::Bid;
use edge_auction::multi_buyer::{
    run_ssam_multi, run_ssam_multi_reference, CoverBid, MultiBuyerWsp,
};
use edge_auction::ssam::{run_ssam, run_ssam_reference, SsamConfig};
use edge_auction::wsp::WspInstance;
use edge_common::id::{BidId, MicroserviceId};
use proptest::prelude::*;

/// Instances where sellers submit up to 4 alternative bids, with the
/// full messy range the mechanism accepts: equal prices (tie-breaking),
/// zero prices, offers far above the demand, and single-unit slivers.
fn arb_instance() -> impl Strategy<Value = WspInstance> {
    proptest::collection::vec(proptest::collection::vec((1u64..12, 0u32..25), 1..5), 2..12)
        .prop_flat_map(|groups| {
            let supply: u64 = groups
                .iter()
                .map(|g| g.iter().map(|(a, _)| *a).max().unwrap_or(0))
                .sum();
            (Just(groups), 1u64..=supply.max(1))
        })
        .prop_filter_map("supply must cover demand", |(groups, demand)| {
            let bids: Vec<Bid> = groups
                .iter()
                .enumerate()
                .flat_map(|(s, g)| {
                    g.iter().enumerate().map(move |(j, (amount, price))| {
                        // Integer prices on purpose: collisions are common, so
                        // the (ratio, seller, id) tie-break is exercised hard.
                        Bid::new(
                            MicroserviceId::new(s),
                            BidId::new(j),
                            *amount,
                            f64::from(*price),
                        )
                        .unwrap()
                    })
                })
                .collect();
            WspInstance::new(demand, bids).ok()
        })
}

/// An optional reserve unit price, sometimes binding, sometimes not.
fn arb_config() -> impl Strategy<Value = SsamConfig> {
    (0u32..3, 1u32..60).prop_map(|(kind, r)| SsamConfig {
        reserve_unit_price: match kind {
            0 => None,
            1 => Some(f64::from(r)),           // often binding
            _ => Some(f64::from(r) + 1_000.0), // never binding
        },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// The tentpole invariant: heap SSAM ≡ scan SSAM, entire outcome.
    #[test]
    fn heap_matches_scan_reference((inst, config) in (arb_instance(), arb_config())) {
        let fast = run_ssam(&inst, &config);
        let slow = run_ssam_reference(&inst, &config);
        match (fast, slow) {
            (Ok(fast), Ok(slow)) => prop_assert_eq!(fast, slow),
            (Err(fast), Err(slow)) => {
                prop_assert_eq!(format!("{fast:?}"), format!("{slow:?}"));
            }
            (fast, slow) => {
                return Err(format!("divergent feasibility: {fast:?} vs {slow:?}"));
            }
        }
    }
}

/// Random multi-buyer set-cover instances, including zero-price bids —
/// the case where the stale-entry utility must be recomputed because a
/// zero key is current at *every* utility level.
fn arb_multi_buyer() -> impl Strategy<Value = MultiBuyerWsp> {
    (
        proptest::collection::vec(1u64..5, 2..5), // buyer demands
        proptest::collection::vec(
            proptest::collection::vec((proptest::collection::vec(0u64..4, 4), 0u32..30), 1..3),
            2..7,
        ),
    )
        .prop_filter_map("need at least one valid bid", |(demands, groups)| {
            let buyers: Vec<(MicroserviceId, u64)> = demands
                .iter()
                .enumerate()
                .map(|(b, &x)| (MicroserviceId::new(1000 + b), x))
                .collect();
            let mut bids = Vec::new();
            for (s, g) in groups.iter().enumerate() {
                for (j, (amounts, price)) in g.iter().enumerate() {
                    let coverage: Vec<(MicroserviceId, u64)> = amounts
                        .iter()
                        .take(buyers.len())
                        .enumerate()
                        .map(|(b, &a)| (MicroserviceId::new(1000 + b), a))
                        .collect();
                    if let Ok(bid) = CoverBid::new(
                        MicroserviceId::new(s),
                        BidId::new(j),
                        coverage,
                        f64::from(*price),
                    ) {
                        bids.push(bid);
                    }
                }
            }
            if bids.is_empty() {
                return None;
            }
            MultiBuyerWsp::new(buyers, bids).ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Heap multi-buyer greedy ≡ scan multi-buyer greedy, entire
    /// outcome — winners, per-buyer coverage, payments.
    #[test]
    fn multi_buyer_heap_matches_scan((inst, config) in (arb_multi_buyer(), arb_config())) {
        let fast = run_ssam_multi(&inst, &config);
        let slow = run_ssam_multi_reference(&inst, &config);
        prop_assert_eq!(fast, slow);
    }
}

/// Deterministic stress: a large all-ties instance (every bid the same
/// unit price) replays the tie-break chain hundreds of levels deep.
#[test]
fn heap_matches_scan_on_mass_ties() {
    let bids: Vec<Bid> = (0..400)
        .map(|s| Bid::new(MicroserviceId::new(s), BidId::new(0), 3, 6.0).unwrap())
        .collect();
    let inst = WspInstance::new(900, bids).unwrap();
    let config = SsamConfig::default();
    let fast = run_ssam(&inst, &config).unwrap();
    let slow = run_ssam_reference(&inst, &config).unwrap();
    assert_eq!(fast, slow);
    assert_eq!(fast.winners.len(), 300);
}
