//! Property tests for the extension mechanisms: multi-buyer SSAM/MSOA,
//! budgets, and VCG.

use edge_auction::bid::{Bid, Seller};
use edge_auction::budget::run_budgeted_ssam;
use edge_auction::msoa_multi::{run_msoa_multi, MsoaMultiConfig, MultiBuyerRound};
use edge_auction::multi_buyer::{run_ssam_multi, CoverBid, MultiBuyerWsp};
use edge_auction::ssam::{run_ssam, SsamConfig};
use edge_auction::vcg::run_vcg;
use edge_auction::wsp::WspInstance;
use edge_common::id::{BidId, MicroserviceId};
use edge_common::units::Price;
use edge_lp::{solve_ilp, IlpOptions};
use proptest::prelude::*;

fn buyer(i: usize) -> MicroserviceId {
    MicroserviceId::new(1000 + i)
}

fn arb_multi_buyer() -> impl Strategy<Value = MultiBuyerWsp> {
    (
        proptest::collection::vec(1u64..4, 1..4), // buyer demands
        proptest::collection::vec(
            // per seller: one bid = (buyer mask seed, amount, price)
            (0usize..64, 1u64..4, 1u32..30),
            2..7,
        ),
    )
        .prop_map(|(demands, raw_bids)| {
            let n_buyers = demands.len();
            let demands: Vec<(MicroserviceId, u64)> = demands
                .into_iter()
                .enumerate()
                .map(|(b, x)| (buyer(b), x))
                .collect();
            let bids: Vec<CoverBid> = raw_bids
                .into_iter()
                .enumerate()
                .map(|(s, (mask, amount, price))| {
                    // At least one buyer covered; mask picks a subset.
                    let mut coverage: Vec<(MicroserviceId, u64)> = (0..n_buyers)
                        .filter(|b| mask & (1 << b) != 0)
                        .map(|b| (buyer(b), amount))
                        .collect();
                    if coverage.is_empty() {
                        coverage.push((buyer(mask % n_buyers), amount));
                    }
                    let total: u64 = coverage.iter().map(|&(_, a)| a).sum();
                    CoverBid::new(
                        MicroserviceId::new(s),
                        BidId::new(0),
                        coverage,
                        price as f64 * total as f64 / 2.0 + 1.0,
                    )
                    .expect("valid generated bid")
                })
                .collect();
            MultiBuyerWsp::new(demands, bids).expect("valid instance")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Coverage never exceeds demand, winners are unique per seller, and
    /// payments are individually rational.
    #[test]
    fn multi_buyer_invariants(inst in arb_multi_buyer()) {
        let out = run_ssam_multi(&inst, &SsamConfig::default());
        for (b, &x) in inst.demands() {
            let c = out.covered.get(b).copied().unwrap_or(0);
            prop_assert!(c <= x, "over-covered buyer {b}");
        }
        let mut sellers: Vec<_> = out.winners.iter().map(|w| w.seller).collect();
        sellers.sort();
        sellers.dedup();
        prop_assert_eq!(sellers.len(), out.winners.len());
        for w in &out.winners {
            prop_assert!(w.payment >= w.price, "IR violated: {w:?}");
        }
    }

    /// When the greedy fully covers, its cost is at least the exact ILP
    /// optimum (sanity: greedy cannot beat the optimum).
    #[test]
    fn multi_buyer_never_beats_ilp(inst in arb_multi_buyer()) {
        let out = run_ssam_multi(&inst, &SsamConfig::default());
        if !out.fully_covered {
            return Ok(());
        }
        let (ilp, _) = inst.to_ilp();
        let opts = IlpOptions { max_nodes: 20_000, ..IlpOptions::default() };
        if let Ok(sol) = solve_ilp(&ilp, &opts) {
            if sol.proven_optimal {
                prop_assert!(out.social_cost.value() >= sol.objective - 1e-6,
                    "greedy {} beat optimum {}", out.social_cost.value(), sol.objective);
            }
        }
    }

    /// VCG's allocation is optimal and its payments are IR on every
    /// random aggregate instance.
    #[test]
    fn vcg_invariants(
        offers in proptest::collection::vec((1u64..6, 1u32..30), 2..8),
        demand_frac in 0.1f64..1.0,
    ) {
        let bids: Vec<Bid> = offers
            .iter()
            .enumerate()
            .map(|(s, &(a, p))| {
                Bid::new(MicroserviceId::new(s), BidId::new(0), a, p as f64 + 1.0).unwrap()
            })
            .collect();
        let supply: u64 = offers.iter().map(|&(a, _)| a).sum();
        let demand = ((supply as f64 * demand_frac) as u64).max(1);
        let inst = WspInstance::new(demand, bids).unwrap();
        let vcg = run_vcg(&inst).unwrap();
        let opt = inst.to_group_cover().solve_exact().unwrap().cost;
        prop_assert!((vcg.social_cost.value() - opt).abs() < 1e-9);
        for w in &vcg.winners {
            prop_assert!(w.payment >= w.price);
        }
        // SSAM never undercuts VCG's (optimal) social cost.
        let ssam = run_ssam(&inst, &SsamConfig::default()).unwrap();
        prop_assert!(ssam.social_cost.value() >= vcg.social_cost.value() - 1e-9);
    }

    /// Budgeted coverage is monotone in the budget and never exceeds it.
    #[test]
    fn budget_monotonicity(
        offers in proptest::collection::vec((1u64..6, 1u32..30), 2..8),
        fracs in proptest::collection::vec(0.0f64..1.5, 4),
    ) {
        let bids: Vec<Bid> = offers
            .iter()
            .enumerate()
            .map(|(s, &(a, p))| {
                Bid::new(MicroserviceId::new(s), BidId::new(0), a, p as f64 + 1.0).unwrap()
            })
            .collect();
        let supply: u64 = offers.iter().map(|&(a, _)| a).sum();
        let inst = WspInstance::new(supply / 2 + 1, bids).unwrap();
        let need = run_ssam(&inst, &SsamConfig::default()).unwrap().total_payment;
        let mut fracs = fracs;
        fracs.sort_by(f64::total_cmp);
        let mut last = 0u64;
        for f in fracs {
            let budget = Price::new(need.value() * f).unwrap();
            let out = run_budgeted_ssam(&inst, &SsamConfig::default(), budget).unwrap();
            prop_assert!(out.total_payment.value() <= budget.value() + 1e-9);
            prop_assert!(out.covered >= last);
            last = out.covered;
        }
    }

    /// Multi-buyer MSOA: capacities hold and social cost accumulates
    /// only true prices.
    #[test]
    fn msoa_multi_capacity_and_pricing(
        raw in proptest::collection::vec((1u64..3, 1u32..20), 4..8),
        rounds in 1usize..4,
    ) {
        let n_sellers = raw.len();
        let sellers: Vec<Seller> = (0..n_sellers)
            .map(|s| Seller::new(MicroserviceId::new(s), 6, (0, rounds as u64 - 1)).unwrap())
            .collect();
        let round_inputs: Vec<MultiBuyerRound> = (0..rounds)
            .map(|_| {
                let bids: Vec<CoverBid> = raw
                    .iter()
                    .enumerate()
                    .map(|(s, &(a, p))| {
                        CoverBid::new(
                            MicroserviceId::new(s),
                            BidId::new(0),
                            vec![(buyer(0), a)],
                            p as f64 + 1.0,
                        )
                        .unwrap()
                    })
                    .collect();
                MultiBuyerRound::new(vec![(buyer(0), 2)], bids)
            })
            .collect();
        let out = run_msoa_multi(&sellers, &round_inputs, &MsoaMultiConfig::default()).unwrap();
        for (s, seller) in sellers.iter().enumerate() {
            prop_assert!(out.chi[s] <= seller.capacity);
        }
        let manual: f64 = out.rounds.iter().map(|r| r.social_cost.value()).sum();
        prop_assert!((manual - out.social_cost.value()).abs() < 1e-9);
        // True prices are integers+1 by construction; scaled prices in
        // outcome.winners may exceed them but social cost must not
        // include the ψ surcharge.
        let max_true: f64 = raw.iter().map(|&(_, p)| p as f64 + 1.0).sum::<f64>() * rounds as f64;
        prop_assert!(out.social_cost.value() <= max_true + 1e-9);
    }
}
