//! Randomized property tests of the mechanism under injected faults.
//!
//! The recovery layer must not erode the paper's guarantees for sellers
//! that behave: whatever the fault plan does to *other* sellers, a
//! non-faulty winner is still paid its full critical value (no clawback),
//! still covers its scaled price (individual rationality), and still
//! cannot gain by misreporting. The accounting must stay exact
//! (`delivered + shortfall = demand`, capacities respected) and the
//! whole pipeline deterministic.

use edge_auction::bid::{Bid, Seller};
use edge_auction::msoa::{run_msoa, MsoaConfig, MultiRoundInstance, RoundInput};
use edge_auction::recovery::{
    run_msoa_with_faults, FaultInjectionConfig, FaultPlan, RecoveryConfig,
};
use edge_auction::ssam::SsamConfig;
use edge_common::id::{BidId, MicroserviceId};
use proptest::prelude::*;

/// A compact multi-round generator (the MSOA property generator, kept in
/// sync with `mechanism_properties.rs`).
fn arb_multi_round() -> impl Strategy<Value = MultiRoundInstance> {
    (
        2usize..6, // sellers
        1usize..5, // rounds
        proptest::collection::vec((1u64..6, 1u32..30), 24),
    )
        .prop_map(|(n_sellers, n_rounds, raw)| {
            let sellers: Vec<Seller> = (0..n_sellers)
                .map(|s| Seller::new(MicroserviceId::new(s), 30, (0, n_rounds as u64 - 1)).unwrap())
                .collect();
            let mut it = raw.into_iter().cycle();
            let rounds: Vec<RoundInput> = (0..n_rounds)
                .map(|_| {
                    let bids: Vec<Bid> = (0..n_sellers)
                        .map(|s| {
                            let (amount, price) = it.next().unwrap();
                            Bid::new(
                                MicroserviceId::new(s),
                                BidId::new(0),
                                amount,
                                price as f64 + 1.0,
                            )
                            .unwrap()
                        })
                        .collect();
                    let supply: u64 = bids.iter().map(|b| b.amount).sum();
                    RoundInput::new((supply / 2).max(1), (supply / 2).max(1), bids)
                })
                .collect();
            MultiRoundInstance::new(sellers, rounds).unwrap()
        })
}

/// An aggressive injection config so the generated plans actually fault.
fn hot_faults() -> FaultInjectionConfig {
    FaultInjectionConfig {
        default_probability: 0.3,
        crash_probability: 0.1,
        dropout_probability: 0.2,
        ..FaultInjectionConfig::default()
    }
}

fn plan_for(instance: &MultiRoundInstance, seed: u64) -> FaultPlan {
    FaultPlan::seeded(
        seed,
        instance.num_rounds(),
        instance.sellers().len(),
        &hot_faults(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Non-faulty winners keep the fault-free guarantees under every
    /// plan: full payment (no clawback) and individual rationality in
    /// the scaled currency the auction runs in.
    #[test]
    fn non_faulty_winners_keep_full_payment_and_ir(
        (instance, seed) in (arb_multi_round(), 0u64..512)
    ) {
        let plan = plan_for(&instance, seed);
        let config = MsoaConfig {
            ssam: SsamConfig { reserve_unit_price: Some(1_000.0) },
            alpha: Some(instance.derive_alpha()),
        };
        let out =
            run_msoa_with_faults(&instance, &config, &plan, &RecoveryConfig::default()).unwrap();
        for r in &out.rounds {
            for w in &r.winners {
                if w.delivered == w.committed {
                    prop_assert_eq!(w.payment_made, w.payment_due,
                        "non-faulty winner {:?} was clawed back", w.seller);
                    prop_assert!(w.payment_made.value() >= w.scaled_price.value() - 1e-9,
                        "IR violated for {:?}: paid {} < scaled {}",
                        w.seller, w.payment_made.value(), w.scaled_price.value());
                }
                prop_assert!(w.payment_made <= w.payment_due);
                prop_assert!(w.delivered <= w.committed);
            }
        }
    }

    /// Accounting stays exact under faults: per round `delivered +
    /// shortfall = demand`, and committed units never exceed capacity.
    #[test]
    fn coverage_accounting_is_exact(
        (instance, seed) in (arb_multi_round(), 0u64..512)
    ) {
        let plan = plan_for(&instance, seed);
        let config = MsoaConfig::pinned(instance.derive_alpha());
        for recovery in [RecoveryConfig::default(), RecoveryConfig::disabled()] {
            let out = run_msoa_with_faults(&instance, &config, &plan, &recovery).unwrap();
            for r in &out.rounds {
                prop_assert!(r.delivered <= r.demand);
                prop_assert_eq!(r.delivered + r.shortfall, r.demand);
                prop_assert_eq!(r.sla_violated, r.shortfall > 0 && r.demand > 0);
                let from_winners: u64 = r.winners.iter().map(|w| w.delivered).sum();
                prop_assert_eq!(from_winners, r.delivered);
            }
            for (s, seller) in instance.sellers().iter().enumerate() {
                prop_assert!(out.chi[s] <= seller.capacity);
            }
            prop_assert_eq!(
                out.shortfall_units,
                out.rounds.iter().map(|r| r.shortfall).sum::<u64>()
            );
        }
    }

    /// An empty plan reproduces plain MSOA bit-for-bit — the fault
    /// pipeline is a strict superset, not a perturbation.
    #[test]
    fn empty_plan_is_differentially_equal_to_msoa(instance in arb_multi_round()) {
        let config = MsoaConfig::pinned(instance.derive_alpha());
        let plain = run_msoa(&instance, &config).unwrap();
        let faulty = run_msoa_with_faults(
            &instance, &config, &FaultPlan::empty(), &RecoveryConfig::default(),
        )
        .unwrap();
        prop_assert_eq!(&faulty.psi, &plain.psi);
        prop_assert_eq!(&faulty.chi, &plain.chi);
        prop_assert_eq!(faulty.social_cost, plain.social_cost);
        prop_assert_eq!(faulty.platform_cost, plain.total_payment);
        prop_assert_eq!(faulty.shortfall_units, 0);
        for (fr, pr) in faulty.rounds.iter().zip(&plain.rounds) {
            prop_assert_eq!(fr.primary_infeasible, pr.infeasible);
            prop_assert_eq!(fr.winners.len(), pr.winners.len());
            for (fw, pw) in fr.winners.iter().zip(&pr.winners) {
                prop_assert_eq!(fw.seller, pw.seller);
                prop_assert_eq!(fw.bid, pw.bid);
                prop_assert_eq!(fw.committed, pw.contribution);
                prop_assert_eq!(fw.scaled_price, pw.scaled_price);
                prop_assert_eq!(fw.payment_made, pw.payment);
            }
        }
    }

    /// Per-round truthfulness survives for non-faulty sellers: under any
    /// fault plan, a seller that neither defaults nor crashes cannot
    /// increase its scaled-currency utility in a round by misreporting
    /// its price there (the fault-free per-round theorem, with the plan
    /// held fixed — faults hit the same (round, seller) pairs in both
    /// runs). α is pinned and a reserve caps pivotal extortion, as in
    /// the fault-free test.
    #[test]
    fn misreport_never_gains_for_non_faulty_seller(
        (instance, seed, seller_pick, round_pick, dev_pick)
            in (arb_multi_round(), 0u64..256, 0usize..6, 0usize..6, 0usize..6)
    ) {
        let plan = plan_for(&instance, seed);
        let config = MsoaConfig {
            ssam: SsamConfig { reserve_unit_price: Some(1_000.0) },
            alpha: Some(instance.derive_alpha()),
        };
        let recovery = RecoveryConfig::default();
        let sellers = instance.sellers();
        let target = sellers[seller_pick % sellers.len()].id;
        let round = round_pick % instance.rounds().len();
        let factor = [0.5, 0.8, 0.95, 1.05, 1.25, 2.0][dev_pick];

        // Only speak about sellers the plan leaves alone in the deviated
        // round: a defaulting target is paid pro-rata (different
        // currency), a crashed one cannot win in either run.
        if plan.delivered_fraction(round as u64, target).is_some()
            || plan.crashed(round as u64, target)
        {
            return Ok(());
        }

        let true_price = instance.rounds()[round]
            .bids
            .iter()
            .find(|b| b.seller == target)
            .map_or(0.0, |b| b.price.value());
        let utility = |out: &edge_auction::recovery::FaultyMsoaOutcome,
                       reported_factor: f64| -> f64 {
            out.rounds[round]
                .winners
                .iter()
                .filter(|w| w.seller == target)
                .map(|w| {
                    let truthful_scaled =
                        w.scaled_price.value() - (reported_factor - 1.0) * true_price;
                    w.payment_made.value() - truthful_scaled
                })
                .sum()
        };

        let truthful = run_msoa_with_faults(&instance, &config, &plan, &recovery).unwrap();
        let misreported = MultiRoundInstance::new(
            instance.sellers().to_vec(),
            instance
                .rounds()
                .iter()
                .enumerate()
                .map(|(t, r)| {
                    let bids = r
                        .bids
                        .iter()
                        .map(|b| {
                            if t == round && b.seller == target {
                                Bid::new(b.seller, b.id, b.amount, b.price.value() * factor)
                                    .unwrap()
                            } else {
                                *b
                            }
                        })
                        .collect();
                    RoundInput::new(r.estimated_demand, r.true_demand, bids)
                })
                .collect(),
        )
        .unwrap();
        let deviated = run_msoa_with_faults(&misreported, &config, &plan, &recovery).unwrap();
        prop_assert!(
            utility(&deviated, factor) <= utility(&truthful, 1.0) + 1e-6,
            "non-faulty seller {target:?} gained by ×{factor} in round {round}: {} > {}",
            utility(&deviated, factor),
            utility(&truthful, 1.0)
        );
    }

    /// The whole fault pipeline is deterministic: plan generation and
    /// the faulty run produce identical outcomes on repeated invocation.
    #[test]
    fn fault_pipeline_is_deterministic(
        (instance, seed) in (arb_multi_round(), 0u64..512)
    ) {
        let plan_a = plan_for(&instance, seed);
        let plan_b = plan_for(&instance, seed);
        prop_assert_eq!(&plan_a, &plan_b);
        let config = MsoaConfig::pinned(instance.derive_alpha());
        let a = run_msoa_with_faults(&instance, &config, &plan_a, &RecoveryConfig::default())
            .unwrap();
        let b = run_msoa_with_faults(&instance, &config, &plan_b, &RecoveryConfig::default())
            .unwrap();
        prop_assert_eq!(a, b);
    }
}
