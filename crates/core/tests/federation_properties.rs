//! Property suite for the federation protocol (DESIGN.md §14).
//!
//! Two invariants hold under arbitrary seeded noise:
//!
//! 1. **Message-level idempotency** — duplicate / late re-deliveries of
//!    federation deal messages are answered (retransmitted replies) but
//!    never re-applied: the standing book, the service state digest,
//!    and every deal counter match exactly-once delivery of the same
//!    causal schedule.
//! 2. **Graceful degradation** — a platform partitioned away for the
//!    whole run hears nothing and clears locally: its service ends in
//!    exactly the state a standalone (single-platform) run produces,
//!    for *any* seeded net-fault plan layered on top.

use edge_auction::bid::{Bid, Seller};
use edge_auction::federation::{
    DealId, Effects, FedMsg, FederationConfig, FederationNode, FederationSim,
};
use edge_auction::msoa::{MultiRoundInstance, RoundInput};
use edge_auction::service::{AuctionService, ServiceConfig, ServiceEvent};
use edge_common::id::{BidId, MicroserviceId, PlatformId};
use edge_common::rng::derive_rng;
use edge_net::{NetFaultPlan, PartitionWindow};
use proptest::prelude::*;
use rand::Rng;

/// The tight-economy stage provider shared by every property: demand
/// can outrun feasible supply, so shortfalls (and therefore deals)
/// actually occur.
fn provider(config: ServiceConfig) -> impl FnMut(u64, u64) -> MultiRoundInstance {
    move |stage, rounds| {
        let mut rng = derive_rng(config.seed.wrapping_add(stage), "fed-prop");
        let n = config.microservices.max(1);
        let rounds = rounds.max(1);
        let sellers: Vec<Seller> = (0..n)
            .map(|s| Seller::new(MicroserviceId::new(s), 8, (0, rounds - 1)).expect("window"))
            .collect();
        let inputs: Vec<RoundInput> = (0..rounds)
            .map(|_| {
                let bids: Vec<Bid> = (0..n)
                    .map(|s| {
                        let amount = 1 + rng.gen_range(0..3u64);
                        let price = rng.gen_range(5.0..20.0);
                        Bid::new(MicroserviceId::new(s), BidId::new(0), amount, price)
                            .expect("valid bid")
                    })
                    .collect();
                let demand = rng.gen_range(1..=config.requests.max(1));
                RoundInput::new(demand, demand, bids)
            })
            .collect();
        MultiRoundInstance::new(sellers, inputs).expect("valid instance")
    }
}

fn base_service_config(seed: u64) -> ServiceConfig {
    ServiceConfig {
        seed,
        microservices: 4,
        requests: 18,
        total_rounds: 8,
        stage_rounds: 2,
        book_cap: 256,
        demand_cap: 100_000,
    }
}

// ---------------------------------------------------------------------
// Property 1: idempotent message handling.
// ---------------------------------------------------------------------

/// One deal's worth of causally-ordered seller-side traffic.
#[derive(Debug, Clone)]
struct DealScript {
    deal: DealId,
    units: u64,
}

/// A delivery schedule: addressed messages in arrival order.
type Schedule = Vec<(PlatformId, FedMsg)>;

/// Builds the seller-side delivery schedule: deals interleaved by
/// `picks` (within-deal causal order preserved: Offer before Commit),
/// then `dup_specs` insert duplicates of already-delivered messages at
/// strictly later positions — including past the end (late deliveries).
fn schedules(
    deals: &[DealScript],
    picks: &[u64],
    dup_specs: &[(u64, u64)],
) -> (Schedule, Schedule) {
    let mut remaining: Vec<(usize, u8)> = deals.iter().map(|_| (0usize, 2u8)).collect();
    let mut base: Vec<(PlatformId, FedMsg)> = Vec::new();
    let mut pick_iter = picks.iter().cycle();
    while remaining.iter().any(|&(_, left)| left > 0) {
        let open: Vec<usize> = remaining
            .iter()
            .enumerate()
            .filter(|(_, &(_, left))| left > 0)
            .map(|(i, _)| i)
            .collect();
        let &pick = pick_iter.next().expect("cycled");
        let which = open[(pick % open.len() as u64) as usize];
        let script = &deals[which];
        let step = remaining[which].0;
        remaining[which].0 += 1;
        remaining[which].1 -= 1;
        let msg = if step == 0 {
            FedMsg::Offer {
                deal: script.deal,
                units: script.units,
                max_unit_price: 10.0,
                attempt: 0,
            }
        } else {
            FedMsg::Commit {
                deal: script.deal,
                attempt: 0,
            }
        };
        base.push((script.deal.origin, msg));
    }
    let mut noisy = base.clone();
    for &(src, gap) in dup_specs {
        let src = (src % noisy.len() as u64) as usize;
        let copy = noisy[src].clone();
        let insert_at = src + 1 + (gap % (noisy.len() - src) as u64) as usize;
        noisy.insert(insert_at, copy);
    }
    (base, noisy)
}

/// Runs a schedule against a fresh seller node, returning the final
/// (state digest, book digest, applied, resold units, surplus).
fn run_seller(schedule: &[(PlatformId, FedMsg)], surplus: u64) -> (String, String, u64, u64) {
    let fed = FederationConfig::uniform(base_service_config(3), 4);
    let config = fed.nodes[1];
    let mut seller = FederationNode::new(PlatformId::new(1), 4, &fed, config, provider(config));
    seller.seed_surplus(surplus, 2.0);
    for (tick, (from, msg)) in schedule.iter().enumerate() {
        let mut effects = Effects::default();
        seller.handle(*from, msg.clone(), tick as u64 + 1, None, &mut effects);
    }
    (
        seller.service().state_digest_hex(),
        seller.service().book_digest_hex(),
        seller.counters().deals_applied,
        seller.counters().resold_units,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Duplicates and late re-deliveries of deal traffic change nothing:
    /// same book, same state digest, same applied-deal accounting as
    /// exactly-once delivery of the same causal schedule.
    #[test]
    fn duplicate_and_late_deliveries_are_idempotent(
        n_deals in 1usize..6,
        buyer_picks in proptest::collection::vec(0u64..1000, 4..24),
        unit_picks in proptest::collection::vec(1u64..6, 6),
        dup_specs in proptest::collection::vec((0u64..1000, 0u64..1000), 1..12),
    ) {
        let deals: Vec<DealScript> = (0..n_deals)
            .map(|i| DealScript {
                deal: DealId {
                    // Buyers 0, 2, 3 (the node under test is 1).
                    origin: PlatformId::new([0usize, 2, 3][i % 3]),
                    seq: i as u64,
                },
                units: unit_picks[i % unit_picks.len()],
            })
            .collect();
        let (base, noisy) = schedules(&deals, &buyer_picks, &dup_specs);
        prop_assert!(noisy.len() > base.len());
        let once = run_seller(&base, 10_000);
        let dup = run_seller(&noisy, 10_000);
        prop_assert_eq!(once, dup);
    }

    /// Buyer-side dedup: duplicate acks book a fill exactly once.
    #[test]
    fn duplicate_acks_book_once(
        units in 1u64..20,
        price in 1u32..40,
        extra_acks in 1usize..6,
    ) {
        let fed = FederationConfig::uniform(base_service_config(5), 2);
        let config = fed.nodes[0];
        let mut buyer = FederationNode::new(PlatformId::new(0), 2, &fed, config, provider(config));
        let deal = DealId { origin: PlatformId::new(0), seq: 0 };
        let seller = PlatformId::new(1);
        let ack = FedMsg::Ack { deal, units, unit_price: f64::from(price) };
        for tick in 0..=extra_acks {
            let mut effects = Effects::default();
            buyer.handle(seller, ack.clone(), tick as u64 + 1, None, &mut effects);
        }
        prop_assert_eq!(buyer.counters().deals_filled, 1);
        prop_assert_eq!(buyer.counters().filled_units, units);
        prop_assert!((buyer.counters().cross_cost - units as f64 * f64::from(price)).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------
// Property 2: graceful degradation under any seeded plan.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A platform isolated for the entire run ends byte-identical to a
    /// standalone run of the same service config, whatever the link
    /// model does to everyone else's traffic.
    #[test]
    fn full_run_partition_degrades_to_standalone(
        seed in 0u64..500,
        net_seed in 0u64..500,
        drop in 0u32..100,
        dup in 0u32..50,
        reorder in 0u32..50,
        latency_min in 1u64..4,
        latency_span in 0u64..4,
        isolated in 0usize..3,
        extra_window in (0u64..20, 1u64..30, 0usize..3),
    ) {
        let config = FederationConfig::uniform(base_service_config(seed), 3);
        let mut plan = NetFaultPlan::ideal(net_seed);
        plan.link.drop_probability = f64::from(drop) / 100.0;
        plan.link.duplicate_probability = f64::from(dup) / 100.0;
        plan.link.reorder_probability = f64::from(reorder) / 100.0;
        plan.link.reorder_max_extra = 3;
        plan.link.latency_min = latency_min;
        plan.link.latency_max = latency_min + latency_span;
        plan.partitions.push(PartitionWindow {
            from: 0,
            until: u64::MAX,
            isolated,
        });
        let (from, len, node) = extra_window;
        plan.partitions.push(PartitionWindow { from, until: from + len, isolated: node });

        let mut sim = FederationSim::new(config.clone(), plan, |_, c| provider(c))
            .expect("valid federation");
        let outcome = sim.run(None).expect("run completes");

        let node_config = config.nodes[isolated];
        let mut standalone = AuctionService::new(node_config, provider(node_config));
        while !standalone.horizon_complete() {
            standalone
                .apply(&ServiceEvent::RoundClosed, None)
                .expect("standalone drive");
        }
        prop_assert_eq!(
            &outcome.nodes[isolated].state_digest,
            &standalone.state_digest_hex()
        );
        prop_assert_eq!(
            &outcome.nodes[isolated].last_outcome_digest,
            &standalone.last_outcome_digest_hex()
        );
        prop_assert_eq!(outcome.nodes[isolated].counters.filled_units, 0);
        prop_assert_eq!(outcome.nodes[isolated].counters.resold_units, 0);
    }
}
