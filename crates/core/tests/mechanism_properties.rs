//! Randomized property tests of the mechanism's economic guarantees.
//!
//! These are the executable versions of the paper's Theorems 3–5 and 7,
//! run over thousands of random instances.

use edge_auction::bid::{Bid, Seller};
use edge_auction::msoa::{run_msoa, MsoaConfig, MultiRoundInstance, RoundInput};
use edge_auction::multi_buyer::{run_ssam_multi, CoverBid, MultiBuyerWsp};
use edge_auction::offline::{offline_optimum_multi, offline_optimum_round};
use edge_auction::properties::{
    audit_truthfulness, check_individual_rationality, check_monotonicity,
};
use edge_auction::ssam::{run_ssam, SsamConfig};
use edge_auction::wsp::WspInstance;
use edge_common::id::{BidId, MicroserviceId};
use edge_lp::IlpOptions;
use proptest::prelude::*;

/// Instances with one bid per seller — the single-parameter Myerson
/// setting where truthfulness is an exact guarantee.
fn arb_single_bid_instance() -> impl Strategy<Value = WspInstance> {
    proptest::collection::vec((1u64..8, 1u32..40), 2..10)
        .prop_flat_map(|offers| {
            let supply: u64 = offers.iter().map(|(a, _)| *a).sum();
            (Just(offers), 1u64..=supply)
        })
        .prop_map(|(offers, demand)| {
            let bids = offers
                .into_iter()
                .enumerate()
                .map(|(s, (amount, price))| {
                    Bid::new(
                        MicroserviceId::new(s),
                        BidId::new(0),
                        amount,
                        price as f64 + 1.0,
                    )
                    .unwrap()
                })
                .collect();
            WspInstance::new(demand, bids).expect("demand bounded by supply")
        })
}

/// Instances where sellers submit up to 3 alternative bids.
fn arb_multi_bid_instance() -> impl Strategy<Value = WspInstance> {
    proptest::collection::vec(proptest::collection::vec((1u64..8, 1u32..40), 1..4), 2..8)
        .prop_flat_map(|groups| {
            let supply: u64 = groups
                .iter()
                .map(|g| g.iter().map(|(a, _)| *a).max().unwrap_or(0))
                .sum();
            (Just(groups), 1u64..=supply.max(1))
        })
        .prop_filter_map("supply must cover demand", |(groups, demand)| {
            let bids: Vec<Bid> = groups
                .iter()
                .enumerate()
                .flat_map(|(s, g)| {
                    g.iter().enumerate().map(move |(j, (amount, price))| {
                        Bid::new(
                            MicroserviceId::new(s),
                            BidId::new(j),
                            *amount,
                            *price as f64 + 1.0,
                        )
                        .unwrap()
                    })
                })
                .collect();
            WspInstance::new(demand, bids).ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Theorem 5: payments always cover prices.
    #[test]
    fn individual_rationality(inst in arb_multi_bid_instance()) {
        let outcome = run_ssam(&inst, &SsamConfig::default()).unwrap();
        prop_assert!(check_individual_rationality(&outcome));
    }

    /// Theorem 3: SSAM's social cost is sandwiched between the exact
    /// optimum and π times the dual certificate.
    #[test]
    fn approximation_sandwich(inst in arb_multi_bid_instance()) {
        let outcome = run_ssam(&inst, &SsamConfig::default()).unwrap();
        let opt = offline_optimum_round(&inst).expect("feasible");
        let primal = outcome.social_cost.value();
        prop_assert!(primal >= opt - 1e-9, "greedy beat the optimum?!");
        let cert = outcome.certificate;
        prop_assert!(cert.dual_objective <= opt + 1e-9,
            "dual {} exceeds optimum {opt}", cert.dual_objective);
        prop_assert!(primal <= cert.pi * opt + 1e-6,
            "ratio {} above certified π {}", primal / opt.max(1e-12), cert.pi);
    }

    /// Demand is exactly covered and each seller wins at most once.
    #[test]
    fn coverage_and_uniqueness(inst in arb_multi_bid_instance()) {
        let outcome = run_ssam(&inst, &SsamConfig::default()).unwrap();
        let covered: u64 = outcome.winners.iter().map(|w| w.contribution).sum();
        prop_assert_eq!(covered, inst.demand());
        let mut sellers: Vec<_> = outcome.winners.iter().map(|w| w.seller).collect();
        sellers.sort();
        sellers.dedup();
        prop_assert_eq!(sellers.len(), outcome.winners.len());
    }

    /// Theorem 4 (exact in the single-parameter setting): no price
    /// deviation beats truthful bidding. A reserve price is required for
    /// exact truthfulness — without one, a *pivotal* seller (one whose
    /// supply is needed for feasibility) is paid its own report and could
    /// extort; the reserve caps that payment at a bid-independent value.
    #[test]
    fn truthfulness_single_bid(inst in arb_single_bid_instance()) {
        let config = SsamConfig { reserve_unit_price: Some(1_000.0) };
        let violations = audit_truthfulness(
            &inst,
            &config,
            &[0.25, 0.5, 0.75, 0.9, 0.99, 1.01, 1.1, 1.5, 2.0, 4.0],
        )
        .unwrap();
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
    }

    /// Without a reserve, any profitable deviation must trace back to a
    /// pivotal seller — competitive sellers still cannot gain.
    #[test]
    fn non_pivotal_sellers_cannot_gain_without_reserve(inst in arb_single_bid_instance()) {
        let violations = audit_truthfulness(
            &inst,
            &SsamConfig::default(),
            &[0.5, 0.9, 1.1, 2.0],
        )
        .unwrap();
        for v in violations {
            // The violator must be pivotal: removing its best offer must
            // break feasibility.
            let rest: u64 = inst
                .groups()
                .iter()
                .filter(|g| g[0].seller != v.seller)
                .map(|g| g.iter().map(|b| b.amount).max().unwrap_or(0))
                .sum();
            prop_assert!(rest < inst.demand(),
                "non-pivotal seller {:?} profited: {v:?}", v.seller);
        }
    }

    /// Lemma 2: winners keep winning at lower prices.
    #[test]
    fn monotonicity(inst in arb_single_bid_instance()) {
        prop_assert!(check_monotonicity(&inst, &SsamConfig::default()).unwrap());
    }
}

/// A compact multi-round generator for MSOA-level properties.
fn arb_multi_round() -> impl Strategy<Value = MultiRoundInstance> {
    (
        2usize..6, // sellers
        1usize..5, // rounds
        proptest::collection::vec((1u64..6, 1u32..30), 24),
    )
        .prop_map(|(n_sellers, n_rounds, raw)| {
            let sellers: Vec<Seller> = (0..n_sellers)
                .map(|s| Seller::new(MicroserviceId::new(s), 30, (0, n_rounds as u64 - 1)).unwrap())
                .collect();
            let mut it = raw.into_iter().cycle();
            let rounds: Vec<RoundInput> = (0..n_rounds)
                .map(|_| {
                    let bids: Vec<Bid> = (0..n_sellers)
                        .map(|s| {
                            let (amount, price) = it.next().unwrap();
                            Bid::new(
                                MicroserviceId::new(s),
                                BidId::new(0),
                                amount,
                                price as f64 + 1.0,
                            )
                            .unwrap()
                        })
                        .collect();
                    // Demand at most half the round's supply keeps most
                    // rounds feasible without trivializing them.
                    let supply: u64 = bids.iter().map(|b| b.amount).sum();
                    RoundInput::new((supply / 2).max(1), (supply / 2).max(1), bids)
                })
                .collect();
            MultiRoundInstance::new(sellers, rounds).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Constraint (11): no seller ever exceeds its capacity, and every
    /// feasible round is exactly covered.
    #[test]
    fn msoa_capacity_and_coverage(instance in arb_multi_round()) {
        let out = run_msoa(&instance, &MsoaConfig::default()).unwrap();
        for (s, seller) in instance.sellers().iter().enumerate() {
            prop_assert!(out.chi[s] <= seller.capacity,
                "seller {s} sold {} over capacity {}", out.chi[s], seller.capacity);
        }
        for r in &out.rounds {
            if !r.infeasible {
                let covered: u64 = r.winners.iter().map(|w| w.contribution).sum();
                prop_assert!(covered >= r.demand);
            }
        }
    }

    /// Theorem 7 (empirical): when every round is feasible and the
    /// offline optimum is exact, the online/offline ratio respects the
    /// competitive bound.
    #[test]
    fn msoa_respects_competitive_bound(instance in arb_multi_round()) {
        let out = run_msoa(&instance, &MsoaConfig::default()).unwrap();
        if !out.infeasible_rounds().is_empty() {
            return Ok(()); // the bound only speaks to fully-served runs
        }
        let offline = match offline_optimum_multi(&instance, true, &IlpOptions::default()) {
            Ok(b) if b.is_exact() => b.value(),
            _ => return Ok(()),
        };
        if offline <= 1e-9 {
            return Ok(());
        }
        let ratio = out.social_cost.value() / offline;
        prop_assert!(ratio >= 1.0 - 1e-9, "online beat offline: {ratio}");
        if out.competitive_bound.is_finite() {
            prop_assert!(ratio <= out.competitive_bound + 1e-6,
                "ratio {ratio} above bound {}", out.competitive_bound);
        }
    }

    /// Payments (on scaled prices) still cover the scaled selection
    /// prices round by round.
    #[test]
    fn msoa_round_payments_cover_scaled_prices(instance in arb_multi_round()) {
        let out = run_msoa(&instance, &MsoaConfig::default()).unwrap();
        for r in &out.rounds {
            for w in &r.winners {
                prop_assert!(w.payment.value() >= w.scaled_price.value() - 1e-9);
                prop_assert!(w.scaled_price >= w.true_price);
            }
        }
    }

    /// Per-round truthfulness on the hot path: misreporting the price in
    /// one round never increases that round's utility *in the ψ-scaled
    /// currency the auction runs in* (payment minus what the truthful
    /// scaled price would have been). Earlier rounds are untouched, so
    /// the ψ state entering the deviated round is identical in both
    /// runs; the reserve caps pivotal-seller extortion as in the
    /// single-round theorem. (Horizon-level utility in *true* prices is
    /// only approximately truthful — ψ couples rounds — which is why
    /// this test mirrors the theorem's per-round statement.)
    #[test]
    fn msoa_unilateral_misreport_never_gains(
        (instance, seller_pick, round_pick, dev_pick)
            in (arb_multi_round(), 0usize..6, 0usize..6, 0usize..6)
    ) {
        // α must be pinned: the default derives it from the submitted
        // prices, which would let a misreport perturb the platform
        // constant itself (and thus every seller's ψ trajectory). The
        // theorem treats α as fixed, so the test does too.
        let config = MsoaConfig {
            ssam: SsamConfig { reserve_unit_price: Some(1_000.0) },
            alpha: Some(instance.derive_alpha()),
        };
        let sellers = instance.sellers();
        let target = sellers[seller_pick % sellers.len()].id;
        let round = round_pick % instance.rounds().len();
        let factor = [0.5, 0.8, 0.95, 1.05, 1.25, 2.0][dev_pick];

        // Scaled utility of `target` in the deviated round. Scaling is
        // additive (∇ = J + a·ψ and ψ is identical in both runs up to
        // `round`), so the truthful scaled price is recovered from the
        // reported one by subtracting the report delta.
        let true_price = instance.rounds()[round]
            .bids
            .iter()
            .find(|b| b.seller == target)
            .map_or(0.0, |b| b.price.value());
        let utility = |out: &edge_auction::msoa::MsoaOutcome, reported_factor: f64| -> f64 {
            out.rounds[round]
                .winners
                .iter()
                .filter(|w| w.seller == target)
                .map(|w| {
                    let truthful_scaled =
                        w.scaled_price.value() - (reported_factor - 1.0) * true_price;
                    w.payment.value() - truthful_scaled
                })
                .sum()
        };

        let truthful = run_msoa(&instance, &config).unwrap();
        let misreported = MultiRoundInstance::new(
            instance.sellers().to_vec(),
            instance
                .rounds()
                .iter()
                .enumerate()
                .map(|(t, r)| {
                    let bids = r
                        .bids
                        .iter()
                        .map(|b| {
                            if t == round && b.seller == target {
                                Bid::new(b.seller, b.id, b.amount, b.price.value() * factor)
                                    .unwrap()
                            } else {
                                *b
                            }
                        })
                        .collect();
                    RoundInput::new(r.estimated_demand, r.true_demand, bids)
                })
                .collect(),
        )
        .unwrap();
        let deviated = run_msoa(&misreported, &config).unwrap();
        prop_assert!(
            utility(&deviated, factor) <= utility(&truthful, 1.0) + 1e-6,
            "seller {target:?} gained by ×{factor} in round {round}: {} > {}",
            utility(&deviated, factor),
            utility(&truthful, 1.0)
        );
    }
}

/// Multi-buyer (set-cover) generator for hot-path properties: small
/// populations, overlapping coverage, zero prices allowed.
fn arb_multi_buyer() -> impl Strategy<Value = MultiBuyerWsp> {
    (
        proptest::collection::vec(1u64..5, 2..5),
        proptest::collection::vec((proptest::collection::vec(0u64..4, 4), 0u32..30), 2..10),
    )
        .prop_filter_map("need at least one valid bid", |(demands, raw_bids)| {
            let buyers: Vec<(MicroserviceId, u64)> = demands
                .iter()
                .enumerate()
                .map(|(b, &x)| (MicroserviceId::new(1000 + b), x))
                .collect();
            let bids: Vec<CoverBid> = raw_bids
                .iter()
                .enumerate()
                .filter_map(|(s, (amounts, price))| {
                    let coverage: Vec<(MicroserviceId, u64)> = amounts
                        .iter()
                        .take(buyers.len())
                        .enumerate()
                        .map(|(b, &a)| (MicroserviceId::new(1000 + b), a))
                        .collect();
                    CoverBid::new(
                        MicroserviceId::new(s),
                        BidId::new(0),
                        coverage,
                        f64::from(*price),
                    )
                    .ok()
                })
                .collect();
            if bids.is_empty() {
                return None;
            }
            MultiBuyerWsp::new(buyers, bids).ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Individual rationality and feasibility on the multi-buyer heap
    /// path: payments cover prices, no buyer is over-counted, a seller
    /// wins at most once, and `fully_covered` means exactly that.
    #[test]
    fn multi_buyer_ir_and_coverage(inst in arb_multi_buyer()) {
        let out = run_ssam_multi(&inst, &SsamConfig::default());
        for w in &out.winners {
            prop_assert!(w.payment.value() >= w.price.value() - 1e-9, "{w:?}");
        }
        let mut sellers: Vec<_> = out.winners.iter().map(|w| w.seller).collect();
        sellers.sort();
        sellers.dedup();
        prop_assert_eq!(sellers.len(), out.winners.len());
        for (buyer, &covered) in &out.covered {
            let demand = inst.demands().get(buyer).copied().unwrap_or(0);
            prop_assert!(covered <= demand, "buyer {buyer:?} over-covered");
        }
        let exact = inst
            .demands()
            .iter()
            .all(|(b, &x)| out.covered.get(b).copied().unwrap_or(0) == x);
        prop_assert_eq!(out.fully_covered, exact);
    }
}
