//! Differential suite for the sharded SoA winner-selection arena and
//! the batched critical-value replays: every performance knob —
//! selection shards, the lane-arena class cap, the replay batch size —
//! must be **unobservable** in outcomes, payments, provenance, and the
//! deterministic trace.
//!
//! The knobs are process-global (like the pricing-thread pool), so
//! every test here holds one mutex and restores the defaults before
//! releasing it; proptest shrinking then never observes a half-toggled
//! process.

use edge_auction::bid::Bid;
use edge_auction::msoa::{run_msoa, MsoaConfig, MultiRoundInstance, RoundInput};
use edge_auction::recovery::{
    run_msoa_with_faults, FaultInjectionConfig, FaultPlan, RecoveryConfig,
};
use edge_auction::ssam::{run_ssam_traced, SsamConfig, SsamOutcome};
use edge_auction::wsp::WspInstance;
use edge_auction::{
    set_lane_class_cap, set_pricing_threads, set_replay_batch, set_shards, AuctionError,
};
use edge_common::id::{BidId, MicroserviceId};
use edge_telemetry::{Collector, Trace};
use proptest::prelude::*;

/// Serializes knob toggling across the whole test binary; the guard
/// restores every default on drop so a failing assertion (or shrink
/// iteration) cannot leak a non-default configuration into other tests.
static KNOB_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

struct KnobGuard<'a>(#[allow(dead_code)] std::sync::MutexGuard<'a, ()>);

impl KnobGuard<'_> {
    fn acquire() -> Self {
        KnobGuard(KNOB_LOCK.lock().unwrap())
    }
}

impl Drop for KnobGuard<'_> {
    fn drop(&mut self) {
        set_shards(1);
        set_replay_batch(0);
        set_lane_class_cap(64);
        set_pricing_threads(1);
    }
}

/// Single-round instances with the messy inputs the mechanism accepts:
/// colliding integer prices (tie-breaks), multiple alternative bids per
/// seller, demand anywhere up to the supply.
fn arb_instance() -> impl Strategy<Value = WspInstance> {
    arb_instance_with_amounts(1u64..12)
}

/// Same shape, but amounts drawn from 1..200: many distinct amount
/// classes, so a small class cap makes the arena refuse to build and
/// the legacy heap path takes over — the fallback itself is what gets
/// differentially tested.
fn arb_wide_instance() -> impl Strategy<Value = WspInstance> {
    arb_instance_with_amounts(1u64..200)
}

fn arb_instance_with_amounts(amounts: std::ops::Range<u64>) -> impl Strategy<Value = WspInstance> {
    proptest::collection::vec(proptest::collection::vec((amounts, 0u32..25), 1..5), 2..12)
        .prop_flat_map(|groups| {
            let supply: u64 = groups
                .iter()
                .map(|g| g.iter().map(|(a, _)| *a).max().unwrap_or(0))
                .sum();
            (Just(groups), 1u64..=supply.max(1))
        })
        .prop_filter_map("supply must cover demand", |(groups, demand)| {
            let bids: Vec<Bid> = groups
                .iter()
                .enumerate()
                .flat_map(|(s, g)| {
                    g.iter().enumerate().map(move |(j, (amount, price))| {
                        Bid::new(
                            MicroserviceId::new(s),
                            BidId::new(j),
                            *amount,
                            f64::from(*price),
                        )
                        .unwrap()
                    })
                })
                .collect();
            WspInstance::new(demand, bids).ok()
        })
}

fn arb_config() -> impl Strategy<Value = SsamConfig> {
    (0u32..3, 1u32..60).prop_map(|(kind, r)| SsamConfig {
        reserve_unit_price: match kind {
            0 => None,
            1 => Some(f64::from(r)),
            _ => Some(f64::from(r) + 1_000.0),
        },
    })
}

/// Runs SSAM under the current knob settings, returning the outcome and
/// the *full* deterministic trace. Engine diagnostics that legitimately
/// differ between the lane arena and the legacy heap (pop and discard
/// counters, lane geometry) live in the profile section; everything in
/// the deterministic section — selections, payments, `CriticalSource`
/// provenance, the certificate, and the engine-invariant `ssam.stats`
/// counters — must be byte-identical across engines and knobs.
fn traced_run(
    inst: &WspInstance,
    config: &SsamConfig,
) -> (Result<SsamOutcome, AuctionError>, String) {
    let collector = Collector::new();
    let outcome = run_ssam_traced(inst, config, Trace::new(&collector));
    (outcome, collector.deterministic_jsonl())
}

fn assert_equivalent(
    label: &str,
    base: &(Result<SsamOutcome, AuctionError>, String),
    other: &(Result<SsamOutcome, AuctionError>, String),
) -> Result<(), String> {
    match (&base.0, &other.0) {
        (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "outcome diverged: {}", label),
        (Err(a), Err(b)) => {
            prop_assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "error diverged: {}",
                label
            )
        }
        (a, b) => return Err(format!("divergent feasibility ({label}): {a:?} vs {b:?}")),
    }
    prop_assert_eq!(&base.1, &other.1, "trace diverged: {}", label);
    Ok(())
}

/// Multi-round instances for the fault-plan replays.
fn arb_multi_round() -> impl Strategy<Value = MultiRoundInstance> {
    use edge_auction::bid::Seller;
    proptest::collection::vec((2u64..12, 0u64..4, 2u64..8), 2..7)
        .prop_flat_map(|sellers| {
            let n = sellers.len();
            (
                Just(sellers),
                proptest::collection::vec(
                    proptest::collection::vec((1u64..6, 0u32..20), n..=n),
                    1..4,
                ),
            )
        })
        .prop_filter_map("rounds must be feasible", |(raw_sellers, raw_rounds)| {
            let sellers: Vec<Seller> = raw_sellers
                .iter()
                .enumerate()
                .map(|(i, (cap, lo, span))| {
                    Seller::new(MicroserviceId::new(i), *cap, (*lo, lo + span)).unwrap()
                })
                .collect();
            let rounds: Vec<RoundInput> = raw_rounds
                .iter()
                .map(|bids| {
                    let bids: Vec<Bid> = bids
                        .iter()
                        .enumerate()
                        .map(|(s, (amount, price))| {
                            Bid::new(
                                MicroserviceId::new(s),
                                BidId::new(0),
                                *amount,
                                f64::from(*price) + 1.0,
                            )
                            .unwrap()
                        })
                        .collect();
                    let supply: u64 = bids.iter().map(|b| b.amount).sum();
                    RoundInput::new((supply / 2).max(1), (supply / 2).max(1), bids)
                })
                .collect();
            MultiRoundInstance::new(sellers, rounds).ok()
        })
}

fn hot_faults() -> FaultInjectionConfig {
    FaultInjectionConfig {
        default_probability: 0.3,
        crash_probability: 0.1,
        dropout_probability: 0.2,
        ..FaultInjectionConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The tentpole invariant: the shard count is unobservable. The
    /// sharded arena (2 and 4 shards) must reproduce the unsharded run
    /// bit-for-bit — winners, exact payments, `CriticalSource`
    /// provenance in the trace, every event.
    #[test]
    fn shard_count_is_unobservable((inst, config) in (arb_instance(), arb_config())) {
        let _guard = KnobGuard::acquire();
        set_shards(1);
        let base = traced_run(&inst, &config);
        for shards in [2usize, 4] {
            set_shards(shards);
            let sharded = traced_run(&inst, &config);
            assert_equivalent(&format!("{shards} shards vs 1"), &base, &sharded)?;
        }
    }

    /// Wide-amount instances under a tiny class cap force the arena to
    /// refuse to build, so the legacy heap runs — that fallback must be
    /// bit-identical to the default-cap arena, to a run with the arena
    /// disabled outright (`cap = 0`), and across shard settings.
    #[test]
    fn class_cap_fallback_is_unobservable(
        (inst, config) in (arb_wide_instance(), arb_config())
    ) {
        let _guard = KnobGuard::acquire();
        set_shards(1);
        set_lane_class_cap(64);
        let arena = traced_run(&inst, &config);
        set_lane_class_cap(2); // refused whenever the instance has > 2 classes
        let fallback = traced_run(&inst, &config);
        assert_equivalent("tiny cap fallback vs default cap", &arena, &fallback)?;
        set_lane_class_cap(0); // arena disabled: always the legacy heap
        let legacy = traced_run(&inst, &config);
        assert_equivalent("arena disabled vs default cap", &arena, &legacy)?;
        set_lane_class_cap(2);
        set_shards(4);
        let sharded = traced_run(&inst, &config);
        assert_equivalent("sharded tiny cap vs unsharded default", &arena, &sharded)?;
    }

    /// Narrow instances always build the arena; forcing it off must
    /// still be unobservable (lane engine ≡ legacy binary heap).
    #[test]
    fn lane_arena_matches_legacy_heap((inst, config) in (arb_instance(), arb_config())) {
        let _guard = KnobGuard::acquire();
        set_lane_class_cap(64);
        let arena = traced_run(&inst, &config);
        set_lane_class_cap(0);
        let legacy = traced_run(&inst, &config);
        assert_equivalent("lane arena vs legacy heap", &arena, &legacy)?;
    }

    /// Batched critical-value replays ≡ the per-winner oracle
    /// (`replay_batch = 1`), across batch sizes and thread counts.
    #[test]
    fn replay_batch_size_is_unobservable((inst, config) in (arb_instance(), arb_config())) {
        let _guard = KnobGuard::acquire();
        set_replay_batch(1); // the per-winner oracle
        let oracle = traced_run(&inst, &config);
        for (batch, threads) in [(0usize, 1usize), (2, 1), (64, 1), (0, 4)] {
            set_replay_batch(batch);
            set_pricing_threads(threads);
            let batched = traced_run(&inst, &config);
            assert_equivalent(
                &format!("batch={batch} threads={threads} vs per-winner"),
                &oracle,
                &batched,
            )?;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The knobs stay unobservable under non-empty fault plans: the
    /// recovery pipeline (clawback, blacklisting, backfill re-auctions)
    /// replays auctions internally, and every one of those nested runs
    /// must shard and batch identically too.
    #[test]
    fn knobs_are_unobservable_under_faults(
        (instance, seed) in (arb_multi_round(), 0u64..256)
    ) {
        let _guard = KnobGuard::acquire();
        let plan = FaultPlan::seeded(
            seed,
            instance.num_rounds(),
            instance.sellers().len(),
            &hot_faults(),
        );
        let config = MsoaConfig::pinned(instance.derive_alpha());
        set_shards(1);
        set_replay_batch(1);
        let base =
            run_msoa_with_faults(&instance, &config, &plan, &RecoveryConfig::default()).unwrap();
        for (shards, batch) in [(4usize, 0usize), (2, 2), (1, 64)] {
            set_shards(shards);
            set_replay_batch(batch);
            let out = run_msoa_with_faults(&instance, &config, &plan, &RecoveryConfig::default())
                .unwrap();
            prop_assert_eq!(&out, &base, "diverged at shards={} batch={}", shards, batch);
        }
    }

    /// Plain MSOA (the scale benchmark's exact entry point) is also
    /// knob-invariant — this is the property the committed
    /// `BENCH_scale.json` digests rest on.
    #[test]
    fn msoa_outcome_is_knob_invariant(instance in arb_multi_round()) {
        let _guard = KnobGuard::acquire();
        let config = MsoaConfig::pinned(instance.derive_alpha());
        set_shards(1);
        let base = run_msoa(&instance, &config).unwrap();
        for (shards, threads) in [(4usize, 1usize), (0, 1), (1, 4)] {
            set_shards(shards);
            set_pricing_threads(threads);
            let out = run_msoa(&instance, &config).unwrap();
            prop_assert_eq!(&out, &base, "diverged at shards={} threads={}", shards, threads);
        }
    }
}
