//! Analytic Hierarchy Process (Saaty) weight derivation.
//!
//! §III of the paper: "the scaling factors can be decided by the analytic
//! hierarchy process (AHP)". Given a reciprocal pairwise-comparison matrix
//! over the three demand indicators, AHP derives relative weights as the
//! principal eigenvector and scores judgment consistency via the
//! consistency ratio (CR), accepting matrices with `CR < 0.1`.
//!
//! # Examples
//!
//! ```
//! use edge_demand::ahp::PairwiseMatrix;
//!
//! // Waiting time is 2× as important as processing, 4× as request rate;
//! // processing is 2× as important as request rate — perfectly
//! // consistent.
//! let mut m = PairwiseMatrix::identity(3);
//! m.set(0, 1, 2.0).unwrap();
//! m.set(0, 2, 4.0).unwrap();
//! m.set(1, 2, 2.0).unwrap();
//! let r = m.weights();
//! assert!((r.weights[0] - 4.0 / 7.0).abs() < 1e-6);
//! assert!(r.consistency_ratio < 1e-6);
//! assert!(r.is_consistent());
//! ```

use std::error::Error;
use std::fmt;

/// Saaty's random consistency index by matrix order (index 0 unused).
const RANDOM_INDEX: [f64; 11] = [
    0.0, 0.0, 0.0, 0.58, 0.90, 1.12, 1.24, 1.32, 1.41, 1.45, 1.49,
];

/// Error from building a pairwise matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AhpError {
    /// Judgment must be strictly positive and finite.
    InvalidJudgment,
    /// Index out of range or on the diagonal.
    InvalidPosition,
    /// Matrix order outside the supported 1..=10.
    UnsupportedOrder,
}

impl fmt::Display for AhpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AhpError::InvalidJudgment => write!(f, "judgment must be positive and finite"),
            AhpError::InvalidPosition => write!(f, "position out of range or on the diagonal"),
            AhpError::UnsupportedOrder => write!(f, "matrix order must be between 1 and 10"),
        }
    }
}

impl Error for AhpError {}

/// A positive reciprocal pairwise-comparison matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct PairwiseMatrix {
    n: usize,
    data: Vec<f64>,
}

/// Result of an AHP weight derivation.
#[derive(Debug, Clone, PartialEq)]
pub struct AhpResult {
    /// Normalized weights (sum to 1) — the principal eigenvector.
    pub weights: Vec<f64>,
    /// Principal eigenvalue `λ_max` (≥ n, with equality iff perfectly
    /// consistent).
    pub lambda_max: f64,
    /// Consistency index `(λ_max − n) / (n − 1)` (0 for n ≤ 2).
    pub consistency_index: f64,
    /// Consistency ratio `CI / RI(n)` (0 for n ≤ 2).
    pub consistency_ratio: f64,
}

impl AhpResult {
    /// Saaty's acceptance rule: `CR < 0.1`.
    pub fn is_consistent(&self) -> bool {
        self.consistency_ratio < 0.1
    }
}

impl PairwiseMatrix {
    /// Creates the identity judgment ("everything equally important").
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or greater than 10 (Saaty's random index table
    /// covers orders up to 10).
    pub fn identity(n: usize) -> Self {
        assert!(
            (1..=10).contains(&n),
            "matrix order must be between 1 and 10"
        );
        let mut data = vec![1.0; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        PairwiseMatrix { n, data }
    }

    /// The matrix order.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Returns the judgment `a_ij` ("how much more important is criterion
    /// i than j").
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Sets `a_ij = v` and the reciprocal `a_ji = 1/v`.
    ///
    /// # Errors
    ///
    /// * [`AhpError::InvalidPosition`] if `i == j` or either index is out
    ///   of range.
    /// * [`AhpError::InvalidJudgment`] if `v` is not strictly positive
    ///   and finite.
    pub fn set(&mut self, i: usize, j: usize, v: f64) -> Result<(), AhpError> {
        if i == j || i >= self.n || j >= self.n {
            return Err(AhpError::InvalidPosition);
        }
        if !v.is_finite() || v <= 0.0 {
            return Err(AhpError::InvalidJudgment);
        }
        self.data[i * self.n + j] = v;
        self.data[j * self.n + i] = 1.0 / v;
        Ok(())
    }

    /// Derives weights by power iteration on the judgment matrix.
    pub fn weights(&self) -> AhpResult {
        let n = self.n;
        let mut w = vec![1.0 / n as f64; n];
        let mut lambda = n as f64;
        for _ in 0..200 {
            let mut next = vec![0.0; n];
            for (i, nx) in next.iter_mut().enumerate() {
                for (j, &wj) in w.iter().enumerate() {
                    *nx += self.get(i, j) * wj;
                }
            }
            let sum: f64 = next.iter().sum();
            for v in &mut next {
                *v /= sum;
            }
            // λ_max estimate: mean of (Aw)_i / w_i.
            let mut aw = vec![0.0; n];
            for (i, awi) in aw.iter_mut().enumerate() {
                for (j, &nj) in next.iter().enumerate() {
                    *awi += self.get(i, j) * nj;
                }
            }
            lambda = aw.iter().zip(&next).map(|(a, w)| a / w).sum::<f64>() / n as f64;
            let delta: f64 = next.iter().zip(&w).map(|(a, b)| (a - b).abs()).sum();
            w = next;
            if delta < 1e-12 {
                break;
            }
        }
        let ci = if n <= 2 {
            0.0
        } else {
            (lambda - n as f64) / (n as f64 - 1.0)
        };
        let ri = RANDOM_INDEX[n];
        let cr = if ri > 0.0 { ci / ri } else { 0.0 };
        AhpResult {
            weights: w,
            lambda_max: lambda,
            consistency_index: ci,
            consistency_ratio: cr.max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_gives_equal_weights() {
        let m = PairwiseMatrix::identity(3);
        let r = m.weights();
        for w in &r.weights {
            assert!((w - 1.0 / 3.0).abs() < 1e-9);
        }
        assert!(r.is_consistent());
        assert!((r.lambda_max - 3.0).abs() < 1e-6);
    }

    #[test]
    fn consistent_matrix_recovers_exact_ratios() {
        // w = (4/7, 2/7, 1/7): judgments a_ij = w_i / w_j.
        let mut m = PairwiseMatrix::identity(3);
        m.set(0, 1, 2.0).unwrap();
        m.set(0, 2, 4.0).unwrap();
        m.set(1, 2, 2.0).unwrap();
        let r = m.weights();
        assert!((r.weights[0] - 4.0 / 7.0).abs() < 1e-9, "{:?}", r.weights);
        assert!((r.weights[1] - 2.0 / 7.0).abs() < 1e-9);
        assert!((r.weights[2] - 1.0 / 7.0).abs() < 1e-9);
        assert!(r.consistency_ratio < 1e-9);
    }

    #[test]
    fn inconsistent_matrix_is_flagged() {
        // Cyclic preferences: a>b, b>c, c>a — maximally inconsistent.
        let mut m = PairwiseMatrix::identity(3);
        m.set(0, 1, 9.0).unwrap();
        m.set(1, 2, 9.0).unwrap();
        m.set(2, 0, 9.0).unwrap();
        let r = m.weights();
        assert!(!r.is_consistent(), "CR = {}", r.consistency_ratio);
        assert!(r.lambda_max > 3.0);
    }

    #[test]
    fn reciprocity_is_maintained() {
        let mut m = PairwiseMatrix::identity(4);
        m.set(1, 3, 5.0).unwrap();
        assert_eq!(m.get(3, 1), 1.0 / 5.0);
    }

    #[test]
    fn set_rejects_bad_input() {
        let mut m = PairwiseMatrix::identity(3);
        assert_eq!(m.set(0, 0, 2.0), Err(AhpError::InvalidPosition));
        assert_eq!(m.set(0, 5, 2.0), Err(AhpError::InvalidPosition));
        assert_eq!(m.set(0, 1, 0.0), Err(AhpError::InvalidJudgment));
        assert_eq!(m.set(0, 1, f64::NAN), Err(AhpError::InvalidJudgment));
    }

    #[test]
    #[should_panic(expected = "matrix order")]
    fn rejects_order_zero() {
        PairwiseMatrix::identity(0);
    }

    #[test]
    fn weights_sum_to_one() {
        let mut m = PairwiseMatrix::identity(5);
        m.set(0, 1, 3.0).unwrap();
        m.set(0, 2, 5.0).unwrap();
        m.set(1, 4, 2.0).unwrap();
        m.set(3, 2, 0.5).unwrap();
        let r = m.weights();
        let sum: f64 = r.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(r.weights.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn lambda_max_at_least_order() {
        // Perron theory: λ_max >= n for positive reciprocal matrices.
        let mut m = PairwiseMatrix::identity(4);
        m.set(0, 1, 7.0).unwrap();
        m.set(2, 3, 0.2).unwrap();
        let r = m.weights();
        assert!(r.lambda_max >= 4.0 - 1e-9, "λ_max = {}", r.lambda_max);
    }
}
