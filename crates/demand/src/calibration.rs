//! Calibration of the §III scale coefficients from observations.
//!
//! The paper fixes ζ (waiting-time scale) and Δ (request-rate scale) as
//! "fixed constants" without saying where they come from. In a real
//! deployment the platform observes `(metrics, realized demand)` pairs —
//! e.g. how many units a microservice actually ended up needing — and
//! can *fit* the coefficients. Because Eq. (1) is linear in ζ and Δ
//! (given the AHP weights), ordinary least squares has a closed form:
//! solve the 2×2 normal equations for the two unknowns with the
//! processing-rate term as a fixed offset.

use crate::estimator::{DemandConfig, DemandEstimator, IndicatorWeights};
use edge_sim::metrics::MsMetrics;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors from calibration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibrationError {
    /// Fewer than two samples — the system is underdetermined.
    NotEnoughSamples,
    /// The design matrix is singular (e.g. all samples have zero
    /// waiting or zero rate factor), so ζ and Δ cannot be separated.
    DegenerateSamples,
}

impl fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibrationError::NotEnoughSamples => {
                write!(f, "calibration needs at least two samples")
            }
            CalibrationError::DegenerateSamples => {
                write!(f, "samples do not separate the waiting and rate factors")
            }
        }
    }
}

impl Error for CalibrationError {}

/// One calibration observation: the metrics row, the round it came
/// from, and the demand that was actually realized.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// The per-round metrics.
    pub metrics: MsMetrics,
    /// The paper's `t` (≥ 1).
    pub round: u64,
    /// The realized demand the estimate should have matched.
    pub realized_demand: f64,
}

/// Result of a least-squares fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Fitted ζ.
    pub zeta: f64,
    /// Fitted Δ.
    pub delta: f64,
    /// Root-mean-square error of the fit on the samples.
    pub rmse: f64,
}

impl Calibration {
    /// Builds a [`DemandConfig`] from the fit and the weights it was
    /// fitted under.
    pub fn to_config(self, weights: IndicatorWeights) -> DemandConfig {
        DemandConfig {
            weights,
            zeta: self.zeta,
            delta: self.delta,
        }
    }
}

/// The ζ- and Δ-free regressors of one observation:
/// `X = ζ·a + Δ·b + c` with
/// `a = w_γ·(θ/π)`, `b = w_T·(share·util·t)/(𝒱·(1−util))`,
/// `c = w_ℝ·ℝ`.
fn regressors(weights: &IndicatorWeights, m: &MsMetrics, round: u64) -> (f64, f64, f64) {
    // Reuse the estimator with ζ = Δ = 1 to obtain the raw factors.
    let probe = DemandEstimator::new(DemandConfig {
        weights: *weights,
        zeta: 1.0,
        delta: 1.0,
    });
    let est = probe.estimate(m, round);
    (
        weights.waiting * est.waiting_factor,
        weights.rate * est.rate_factor,
        weights.processing * est.processing_factor,
    )
}

/// Fits ζ and Δ by ordinary least squares.
///
/// # Errors
///
/// * [`CalibrationError::NotEnoughSamples`] with fewer than 2 samples.
/// * [`CalibrationError::DegenerateSamples`] when the normal matrix is
///   singular.
pub fn fit(
    weights: &IndicatorWeights,
    samples: &[Observation],
) -> Result<Calibration, CalibrationError> {
    if samples.len() < 2 {
        return Err(CalibrationError::NotEnoughSamples);
    }
    // Normal equations for y − c = ζ·a + Δ·b.
    let (mut saa, mut sab, mut sbb, mut say, mut sby) = (0.0, 0.0, 0.0, 0.0, 0.0);
    let mut rows = Vec::with_capacity(samples.len());
    for obs in samples {
        let (a, b, c) = regressors(weights, &obs.metrics, obs.round);
        let y = obs.realized_demand - c;
        saa += a * a;
        sab += a * b;
        sbb += b * b;
        say += a * y;
        sby += b * y;
        rows.push((a, b, c));
    }
    let det = saa * sbb - sab * sab;
    if det.abs() < 1e-12 {
        return Err(CalibrationError::DegenerateSamples);
    }
    let zeta = (say * sbb - sby * sab) / det;
    let delta = (sby * saa - say * sab) / det;

    let mut sq_err = 0.0;
    for (obs, (a, b, c)) in samples.iter().zip(&rows) {
        let predicted = zeta * a + delta * b + c;
        sq_err += (predicted - obs.realized_demand).powi(2);
    }
    let rmse = (sq_err / samples.len() as f64).sqrt();
    Ok(Calibration { zeta, delta, rmse })
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_common::id::{MicroserviceId, Round};

    fn metrics(served: u64, utilization: f64, neighbors: usize) -> MsMetrics {
        MsMetrics {
            ms: MicroserviceId::new(0),
            round: Round::new(3),
            allocation: 1.0,
            max_allocation: 2.0,
            received_total: 10,
            served_total: served,
            received_round: 2,
            served_round: 1,
            queue_len: 3,
            queued_work: 1.0,
            work_arrived_total: 6.0,
            work_done_total: 4.0,
            utilization,
            neighbors_active: neighbors,
            mean_waiting: 1.0,
        }
    }

    fn synthesize(zeta: f64, delta: f64, weights: &IndicatorWeights) -> Vec<Observation> {
        let config = DemandConfig {
            weights: *weights,
            zeta,
            delta,
        };
        let truth = DemandEstimator::new(config);
        let variations = [
            (metrics(2, 0.2, 1), 2),
            (metrics(5, 0.5, 2), 3),
            (metrics(8, 0.7, 3), 4),
            (metrics(9, 0.9, 4), 5),
            (metrics(3, 0.4, 2), 6),
        ];
        variations
            .iter()
            .map(|(m, round)| Observation {
                metrics: m.clone(),
                round: *round,
                realized_demand: truth.estimate(m, *round).demand,
            })
            .collect()
    }

    #[test]
    fn recovers_known_coefficients_exactly() {
        let weights = IndicatorWeights::equal();
        for (zeta, delta) in [(1.0, 1.0), (2.5, 0.5), (0.3, 4.0)] {
            let samples = synthesize(zeta, delta, &weights);
            let fit = fit(&weights, &samples).unwrap();
            assert!((fit.zeta - zeta).abs() < 1e-6, "ζ {} vs {zeta}", fit.zeta);
            assert!(
                (fit.delta - delta).abs() < 1e-6,
                "Δ {} vs {delta}",
                fit.delta
            );
            assert!(fit.rmse < 1e-9);
        }
    }

    #[test]
    fn noisy_samples_fit_approximately() {
        let weights = IndicatorWeights::equal();
        let mut samples = synthesize(2.0, 1.5, &weights);
        for (i, s) in samples.iter_mut().enumerate() {
            s.realized_demand += if i % 2 == 0 { 0.01 } else { -0.01 };
        }
        let fit = fit(&weights, &samples).unwrap();
        assert!((fit.zeta - 2.0).abs() < 0.2);
        assert!((fit.delta - 1.5).abs() < 0.2);
        assert!(fit.rmse > 0.0 && fit.rmse < 0.05);
    }

    #[test]
    fn rejects_underdetermined_input() {
        let weights = IndicatorWeights::equal();
        let samples = synthesize(1.0, 1.0, &weights);
        assert_eq!(
            fit(&weights, &samples[..1]),
            Err(CalibrationError::NotEnoughSamples)
        );
        assert_eq!(fit(&weights, &[]), Err(CalibrationError::NotEnoughSamples));
    }

    #[test]
    fn rejects_degenerate_samples() {
        // All-zero waiting AND rate factors: served=0, utilization=0.
        let weights = IndicatorWeights::equal();
        let m = MsMetrics {
            served_total: 0,
            received_total: 0,
            utilization: 0.0,
            ..metrics(0, 0.0, 1)
        };
        let samples = vec![
            Observation {
                metrics: m.clone(),
                round: 1,
                realized_demand: 1.0,
            },
            Observation {
                metrics: m,
                round: 2,
                realized_demand: 2.0,
            },
        ];
        assert_eq!(
            fit(&weights, &samples),
            Err(CalibrationError::DegenerateSamples)
        );
    }

    #[test]
    fn fitted_config_round_trips_into_estimator() {
        let weights = IndicatorWeights::equal();
        let samples = synthesize(1.7, 0.9, &weights);
        let calibration = fit(&weights, &samples).unwrap();
        let estimator = DemandEstimator::new(calibration.to_config(weights));
        for obs in &samples {
            let predicted = estimator.estimate(&obs.metrics, obs.round).demand;
            assert!((predicted - obs.realized_demand).abs() < 1e-6);
        }
    }
}
