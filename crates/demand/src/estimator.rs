//! The demand indicator function of §III (Eq. 1–2).
//!
//! `X_i^t = (1/w_γ)·γ_i^t + (1/w_ℝ)·ℝ_i^t + (1/w_𝕋)·𝕋_i^t`, where
//!
//! * `γ_i^t = ζ·θ_i/π_i` — the waiting-time factor (completion progress
//!   scaled by ζ);
//! * `ℝ_i^t = (ς_i − ϖ_i)/t` — the processing-rate factor: the long-run
//!   average shortfall between the rate the microservice *needs* (`ς`,
//!   work arriving per round) and the rate it *achieves* (`ϖ`, work
//!   completed per round);
//! * `𝕋_i^t = Δ·(a_i^t/a_max)·(𝕃_i^t·t/𝒱(n̄))·1/(1−𝕃_i^t)` — the
//!   request-rate factor from the allocation share, execution rate, and
//!   neighbour density.
//!
//! The paper leaves three singularities unguarded; we handle them
//! explicitly (each is tested): `π_i = 0` (no requests yet → γ = 0),
//! `𝕃 → 1` (utilization is clamped below 1 so the factor stays finite),
//! and `𝒱(n̄) = 0` (treated as 1 — the microservice is its own
//! neighbourhood).

use crate::ahp::PairwiseMatrix;
use edge_common::id::MicroserviceId;
use edge_common::indicator::{Indicator, ObservedIndicators};
use edge_sim::metrics::MsMetrics;
use serde::{Deserialize, Serialize};

/// Highest utilization the 𝕋 factor will see; keeps `1/(1−𝕃)` finite.
const MAX_UTILIZATION: f64 = 0.99;

/// The `1/w` scaling factors of Eq. (1), one per indicator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndicatorWeights {
    /// `1/w_γ` — waiting-time weight.
    pub waiting: f64,
    /// `1/w_ℝ` — processing-rate weight.
    pub processing: f64,
    /// `1/w_𝕋` — request-rate weight.
    pub rate: f64,
}

impl IndicatorWeights {
    /// Equal weighting of all three indicators.
    pub fn equal() -> Self {
        IndicatorWeights {
            waiting: 1.0 / 3.0,
            processing: 1.0 / 3.0,
            rate: 1.0 / 3.0,
        }
    }

    /// Derives the weights from an AHP pairwise judgment over
    /// (waiting, processing, rate) — the paper's §III recipe.
    ///
    /// # Panics
    ///
    /// Panics if the matrix order is not 3.
    pub fn from_ahp(judgments: &PairwiseMatrix) -> Self {
        assert_eq!(
            judgments.order(),
            3,
            "demand estimation uses exactly three indicators"
        );
        let r = judgments.weights();
        IndicatorWeights {
            waiting: r.weights[0],
            processing: r.weights[1],
            rate: r.weights[2],
        }
    }

    /// The weight assigned to one indicator.
    pub fn weight(&self, indicator: Indicator) -> f64 {
        match indicator {
            Indicator::Waiting => self.waiting,
            Indicator::Processing => self.processing,
            Indicator::Rate => self.rate,
        }
    }

    /// Degraded-mode weights: the observable indicators keep their
    /// relative AHP priorities but are scaled so their sum equals the
    /// full mask's total (the estimate's scale survives a dropout);
    /// unobservable indicators get weight zero.
    ///
    /// With nothing observable — or an observed subset of zero total
    /// weight — every weight is zero and the estimate degrades to zero
    /// demand (the platform has no signal to act on).
    #[must_use]
    pub fn renormalized(&self, observed: ObservedIndicators) -> Self {
        let total: f64 = Indicator::ALL.iter().map(|&i| self.weight(i)).sum();
        let observed_sum: f64 = Indicator::ALL
            .iter()
            .filter(|&&i| observed.contains(i))
            .map(|&i| self.weight(i))
            .sum();
        let scale = if observed_sum > 1e-12 {
            total / observed_sum
        } else {
            0.0
        };
        let keep = |i: Indicator| {
            if observed.contains(i) {
                self.weight(i) * scale
            } else {
                0.0
            }
        };
        IndicatorWeights {
            waiting: keep(Indicator::Waiting),
            processing: keep(Indicator::Processing),
            rate: keep(Indicator::Rate),
        }
    }
}

impl Default for IndicatorWeights {
    fn default() -> Self {
        IndicatorWeights::equal()
    }
}

/// Configuration of the estimator: the indicator weights plus the two
/// scale coefficients of §III.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandConfig {
    /// Indicator weights (`1/w` factors).
    pub weights: IndicatorWeights,
    /// `ζ` — scales the waiting-time factor.
    pub zeta: f64,
    /// `Δ` — scales the request-rate factor.
    pub delta: f64,
}

impl Default for DemandConfig {
    fn default() -> Self {
        DemandConfig {
            weights: IndicatorWeights::equal(),
            zeta: 1.0,
            delta: 1.0,
        }
    }
}

/// One microservice's estimated demand, with the indicator breakdown
/// exposed for inspection (C-INTERMEDIATE).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandEstimate {
    /// Which microservice.
    pub ms: MicroserviceId,
    /// The waiting-time factor `γ_i^t` (already ζ-scaled).
    pub waiting_factor: f64,
    /// The processing-rate factor `ℝ_i^t`.
    pub processing_factor: f64,
    /// The request-rate factor `𝕋_i^t` (already Δ-scaled).
    pub rate_factor: f64,
    /// The combined demand `X_i^t` (weighted sum, `>= 0`).
    pub demand: f64,
}

impl DemandEstimate {
    /// Quantizes the demand onto an integer resource grid (ceiling, so a
    /// fractional need still requests a unit).
    pub fn units(&self) -> u64 {
        self.demand.ceil().max(0.0) as u64
    }
}

/// The §III demand estimator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DemandEstimator {
    config: DemandConfig,
}

impl DemandEstimator {
    /// Creates an estimator with the given configuration.
    pub fn new(config: DemandConfig) -> Self {
        DemandEstimator { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &DemandConfig {
        &self.config
    }

    /// Estimates demand from one microservice's metrics row.
    ///
    /// `round` is the paper's `t` and must be ≥ 1 (the first estimation
    /// round is 1; at `t = 0` no history exists).
    ///
    /// # Panics
    ///
    /// Panics if `round == 0`.
    pub fn estimate(&self, m: &MsMetrics, round: u64) -> DemandEstimate {
        self.estimate_partial(m, round, ObservedIndicators::all())
    }

    /// Estimates demand when only a subset of indicators is observable
    /// (sensor dropout): the weights are renormalized over the observed
    /// subset via [`IndicatorWeights::renormalized`], and an unobserved
    /// factor is reported as `0.0` in the breakdown (it contributes
    /// nothing). With the full mask this is exactly [`Self::estimate`].
    ///
    /// # Panics
    ///
    /// Panics if `round == 0`.
    pub fn estimate_partial(
        &self,
        m: &MsMetrics,
        round: u64,
        observed: ObservedIndicators,
    ) -> DemandEstimate {
        assert!(
            round >= 1,
            "demand estimation needs at least one elapsed round"
        );
        let t = round as f64;

        // γ = ζ·θ/π. With no requests received there is nothing to wait
        // for: γ = 0. An unobserved indicator contributes nothing.
        let waiting_factor = if !observed.contains(Indicator::Waiting) || m.received_total == 0 {
            0.0
        } else {
            self.config.zeta * m.served_total as f64 / m.received_total as f64
        };

        // ℝ = (ς − ϖ)/t with ς = arrived work rate, ϖ = completed work
        // rate; the backlog rate is clamped at zero (a microservice ahead
        // of its arrivals has no processing-driven demand).
        let processing_factor = if observed.contains(Indicator::Processing) {
            let desired_rate = m.work_arrived_total / t;
            let achieved_rate = m.work_done_total / t;
            ((desired_rate - achieved_rate) / t).max(0.0)
        } else {
            0.0
        };

        // 𝕋 = Δ·(a/a_max)·(𝕃·t/𝒱)·1/(1−𝕃).
        let rate_factor = if observed.contains(Indicator::Rate) {
            let share = if m.max_allocation > 1e-12 {
                m.allocation / m.max_allocation
            } else {
                0.0
            };
            let util = m.utilization.clamp(0.0, MAX_UTILIZATION);
            let density = (m.neighbors_active.max(1)) as f64;
            self.config.delta * share * (util * t / density) / (1.0 - util)
        } else {
            0.0
        };

        let w = self.config.weights.renormalized(observed);
        let demand =
            (w.waiting * waiting_factor + w.processing * processing_factor + w.rate * rate_factor)
                .max(0.0);

        DemandEstimate {
            ms: m.ms,
            waiting_factor,
            processing_factor,
            rate_factor,
            demand,
        }
    }

    /// Estimates demand for a whole metrics batch (one round).
    pub fn estimate_round(&self, batch: &[MsMetrics], round: u64) -> Vec<DemandEstimate> {
        batch.iter().map(|m| self.estimate(m, round)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_common::id::Round;

    fn metrics() -> MsMetrics {
        MsMetrics {
            ms: MicroserviceId::new(0),
            round: Round::new(3),
            allocation: 1.0,
            max_allocation: 2.0,
            received_total: 10,
            served_total: 5,
            received_round: 3,
            served_round: 1,
            queue_len: 5,
            queued_work: 2.0,
            work_arrived_total: 6.0,
            work_done_total: 4.0,
            utilization: 0.5,
            neighbors_active: 4,
            mean_waiting: 1.0,
        }
    }

    #[test]
    fn combines_three_factors() {
        let est = DemandEstimator::default();
        let d = est.estimate(&metrics(), 4);
        // γ = 1·5/10 = 0.5.
        assert!((d.waiting_factor - 0.5).abs() < 1e-9);
        // ℝ = ((6/4) − (4/4))/4 = 0.125.
        assert!((d.processing_factor - 0.125).abs() < 1e-9);
        // 𝕋 = 1·(1/2)·(0.5·4/4)·1/(1−0.5) = 0.5.
        assert!((d.rate_factor - 0.5).abs() < 1e-9);
        // Equal weights: X = (0.5 + 0.125 + 0.5)/3 = 0.375.
        assert!((d.demand - 1.125 / 3.0).abs() < 1e-9);
        assert_eq!(d.units(), 1);
    }

    #[test]
    fn zero_received_requests_zero_waiting_factor() {
        let est = DemandEstimator::default();
        let m = MsMetrics {
            received_total: 0,
            served_total: 0,
            ..metrics()
        };
        let d = est.estimate(&m, 1);
        assert_eq!(d.waiting_factor, 0.0);
        assert!(d.demand.is_finite());
    }

    #[test]
    fn full_utilization_stays_finite() {
        let est = DemandEstimator::default();
        let m = MsMetrics {
            utilization: 1.0,
            ..metrics()
        };
        let d = est.estimate(&m, 5);
        assert!(d.rate_factor.is_finite());
        assert!(d.rate_factor > 0.0);
    }

    #[test]
    fn zero_neighbors_treated_as_one() {
        let est = DemandEstimator::default();
        let m = MsMetrics {
            neighbors_active: 0,
            ..metrics()
        };
        let d = est.estimate(&m, 5);
        assert!(d.rate_factor.is_finite());
    }

    #[test]
    fn backlog_increases_processing_factor() {
        let est = DemandEstimator::default();
        let light = MsMetrics {
            work_arrived_total: 4.0,
            work_done_total: 4.0,
            ..metrics()
        };
        let heavy = MsMetrics {
            work_arrived_total: 12.0,
            work_done_total: 4.0,
            ..metrics()
        };
        let dl = est.estimate(&light, 4);
        let dh = est.estimate(&heavy, 4);
        assert_eq!(dl.processing_factor, 0.0);
        assert!(dh.processing_factor > dl.processing_factor);
        assert!(dh.demand > dl.demand);
    }

    #[test]
    fn ahead_of_schedule_has_zero_processing_factor() {
        let est = DemandEstimator::default();
        let m = MsMetrics {
            work_arrived_total: 1.0,
            work_done_total: 4.0,
            ..metrics()
        };
        assert_eq!(est.estimate(&m, 4).processing_factor, 0.0);
    }

    #[test]
    fn higher_utilization_means_higher_demand() {
        let est = DemandEstimator::default();
        let low = MsMetrics {
            utilization: 0.2,
            ..metrics()
        };
        let high = MsMetrics {
            utilization: 0.9,
            ..metrics()
        };
        assert!(est.estimate(&high, 4).demand > est.estimate(&low, 4).demand);
    }

    #[test]
    fn ahp_weights_shift_the_estimate() {
        // Weight waiting time much higher than the others.
        let mut j = PairwiseMatrix::identity(3);
        j.set(0, 1, 9.0).unwrap();
        j.set(0, 2, 9.0).unwrap();
        let weights = IndicatorWeights::from_ahp(&j);
        assert!(weights.waiting > weights.processing);
        assert!(weights.waiting > weights.rate);
        let est = DemandEstimator::new(DemandConfig {
            weights,
            ..DemandConfig::default()
        });
        let d = est.estimate(&metrics(), 4);
        // Waiting factor dominates under these weights.
        assert!(d.demand > 0.5 * d.waiting_factor);
    }

    #[test]
    fn estimate_round_covers_batch() {
        let est = DemandEstimator::default();
        let batch = vec![
            metrics(),
            MsMetrics {
                ms: MicroserviceId::new(1),
                ..metrics()
            },
        ];
        let out = est.estimate_round(&batch, 4);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].ms, MicroserviceId::new(1));
    }

    #[test]
    #[should_panic(expected = "at least one elapsed round")]
    fn round_zero_is_rejected() {
        DemandEstimator::default().estimate(&metrics(), 0);
    }

    #[test]
    fn units_rounds_up() {
        let est = DemandEstimator::default();
        let d = est.estimate(&metrics(), 4);
        assert!(d.units() as f64 >= d.demand);
    }

    #[test]
    fn estimate_is_partial_with_full_mask() {
        let est = DemandEstimator::default();
        let full = est.estimate(&metrics(), 4);
        let partial = est.estimate_partial(&metrics(), 4, ObservedIndicators::all());
        assert_eq!(full, partial);
    }

    #[test]
    fn renormalized_weights_preserve_total_and_ratios() {
        let w = IndicatorWeights {
            waiting: 0.6,
            processing: 0.3,
            rate: 0.1,
        };
        let r = w.renormalized(ObservedIndicators::all().without(Indicator::Rate));
        assert_eq!(r.rate, 0.0);
        // Total preserved: 0.6 + 0.3 + 0.1 = 1.0.
        assert!((r.waiting + r.processing - 1.0).abs() < 1e-9);
        // Relative priorities preserved: waiting/processing = 2.
        assert!((r.waiting / r.processing - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dropout_zeroes_the_missing_factor_and_renormalizes() {
        let est = DemandEstimator::default();
        let observed = ObservedIndicators::all().without(Indicator::Processing);
        let d = est.estimate_partial(&metrics(), 4, observed);
        assert_eq!(d.processing_factor, 0.0);
        // Equal weights renormalize to 1/2 each over {waiting, rate}:
        // X = 0.5·0.5 + 0.5·0.5 = 0.5.
        assert!((d.demand - 0.5).abs() < 1e-9);
    }

    #[test]
    fn total_blackout_degrades_to_zero_demand() {
        let est = DemandEstimator::default();
        let d = est.estimate_partial(&metrics(), 4, ObservedIndicators::none());
        assert_eq!(d.waiting_factor, 0.0);
        assert_eq!(d.processing_factor, 0.0);
        assert_eq!(d.rate_factor, 0.0);
        assert_eq!(d.demand, 0.0);
        assert_eq!(d.units(), 0);
    }

    #[test]
    fn single_surviving_indicator_carries_the_full_weight() {
        let est = DemandEstimator::default();
        let observed = ObservedIndicators::none().with(Indicator::Waiting);
        let d = est.estimate_partial(&metrics(), 4, observed);
        // γ = 0.5 carries weight 1.0 after renormalization.
        assert!((d.demand - 0.5).abs() < 1e-9);
    }
}
