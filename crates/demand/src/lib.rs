//! Microservice demand estimation (§III of Samanta et al., ICDCS 2019).
//!
//! "It is very tough to estimate the actual resource demand of
//! microservices under different network dynamics" — the paper removes
//! that uncertainty with a three-indicator estimator whose weights come
//! from the Analytic Hierarchy Process:
//!
//! * [`ahp`] — Saaty pairwise-comparison matrices, principal-eigenvector
//!   weights, and consistency checking;
//! * [`estimator`] — the indicator function `X_i^t` of Eq. (1)–(2) over
//!   the simulator's per-round metrics.
//!
//! # Examples
//!
//! ```
//! use edge_demand::{DemandConfig, DemandEstimator};
//! use edge_demand::ahp::PairwiseMatrix;
//! use edge_demand::estimator::IndicatorWeights;
//!
//! // Judge waiting time twice as important as the other indicators.
//! let mut j = PairwiseMatrix::identity(3);
//! j.set(0, 1, 2.0).unwrap();
//! j.set(0, 2, 2.0).unwrap();
//! let config = DemandConfig {
//!     weights: IndicatorWeights::from_ahp(&j),
//!     ..DemandConfig::default()
//! };
//! let estimator = DemandEstimator::new(config);
//! assert!(estimator.config().weights.waiting > estimator.config().weights.rate);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod ahp;
pub mod calibration;
pub mod estimator;
pub mod smoothing;

pub use ahp::{AhpError, AhpResult, PairwiseMatrix};
pub use calibration::{fit, Calibration, CalibrationError, Observation};
pub use estimator::{DemandConfig, DemandEstimate, DemandEstimator, IndicatorWeights};
pub use smoothing::SmoothedEstimator;
