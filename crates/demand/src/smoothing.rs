//! History-weighted demand smoothing.
//!
//! §III: "the actual value of a demand at time t actually does not have
//! too much interpretation, but instead, the demands of all
//! microservices at time t−1, t−2, ⋯ are more important in order to
//! design a fair demand estimation scheme." The paper does not specify
//! the aggregation; we implement the standard exponentially weighted
//! moving average (EWMA) over the per-round indicator estimates:
//! `X̄_i^t = α·X_i^t + (1−α)·X̄_i^{t−1}`, so older rounds contribute with
//! geometrically decaying weight — exactly "more important history"
//! with a single tunable knob.

use crate::estimator::{DemandEstimate, DemandEstimator};
use edge_common::id::MicroserviceId;
use edge_sim::metrics::MsMetrics;
use std::collections::BTreeMap;

/// A stateful estimator that smooths the §III indicator function over
/// rounds.
#[derive(Debug, Clone)]
pub struct SmoothedEstimator {
    inner: DemandEstimator,
    alpha: f64,
    state: BTreeMap<MicroserviceId, f64>,
}

impl SmoothedEstimator {
    /// Creates a smoothing wrapper with weight `alpha ∈ (0, 1]` on the
    /// newest observation (`alpha = 1` disables smoothing).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(inner: DemandEstimator, alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0 && alpha.is_finite(),
            "EWMA weight must lie in (0, 1]"
        );
        SmoothedEstimator {
            inner,
            alpha,
            state: BTreeMap::new(),
        }
    }

    /// The smoothing weight.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The wrapped raw estimator.
    pub fn inner(&self) -> &DemandEstimator {
        &self.inner
    }

    /// Observes one round of metrics and returns smoothed estimates.
    ///
    /// The indicator breakdown in each returned [`DemandEstimate`] is the
    /// *raw* per-round value (so the factors stay interpretable); only
    /// the combined `demand` is smoothed.
    pub fn observe(&mut self, batch: &[MsMetrics], round: u64) -> Vec<DemandEstimate> {
        batch
            .iter()
            .map(|m| {
                let mut est = self.inner.estimate(m, round);
                let smoothed = match self.state.get(&m.ms) {
                    None => est.demand,
                    Some(&prev) => self.alpha * est.demand + (1.0 - self.alpha) * prev,
                };
                self.state.insert(m.ms, smoothed);
                est.demand = smoothed;
                est
            })
            .collect()
    }

    /// The current smoothed demand of a microservice, if it has been
    /// observed.
    pub fn current(&self, ms: MicroserviceId) -> Option<f64> {
        self.state.get(&ms).copied()
    }

    /// Clears all history (e.g. at a time-slot boundary).
    pub fn reset(&mut self) {
        self.state.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::DemandConfig;
    use edge_common::id::Round;

    fn metrics(ms: usize, utilization: f64) -> MsMetrics {
        MsMetrics {
            ms: MicroserviceId::new(ms),
            round: Round::new(1),
            allocation: 1.0,
            max_allocation: 1.0,
            received_total: 10,
            served_total: 5,
            received_round: 2,
            served_round: 1,
            queue_len: 1,
            queued_work: 1.0,
            work_arrived_total: 4.0,
            work_done_total: 3.0,
            utilization,
            neighbors_active: 2,
            mean_waiting: 1.0,
        }
    }

    fn smoothed(alpha: f64) -> SmoothedEstimator {
        SmoothedEstimator::new(DemandEstimator::new(DemandConfig::default()), alpha)
    }

    #[test]
    fn first_observation_passes_through() {
        let mut s = smoothed(0.3);
        let raw = s.inner().estimate(&metrics(0, 0.5), 1).demand;
        let out = s.observe(&[metrics(0, 0.5)], 1);
        assert!((out[0].demand - raw).abs() < 1e-12);
    }

    #[test]
    fn alpha_one_is_identity() {
        let mut s = smoothed(1.0);
        for round in 1..5 {
            let raw = s
                .inner()
                .estimate(&metrics(0, 0.2 * round as f64), round)
                .demand;
            let out = s.observe(&[metrics(0, 0.2 * round as f64)], round);
            assert!((out[0].demand - raw).abs() < 1e-12, "round {round}");
        }
    }

    #[test]
    fn constant_signal_converges_to_it() {
        let mut s = smoothed(0.4);
        let mut last = 0.0;
        for round in 1..60 {
            last = s.observe(&[metrics(0, 0.5)], round)[0].demand;
        }
        // With constant utilization the raw estimate at round t still
        // varies with t; check against the latest raw value only loosely.
        let raw = s.inner().estimate(&metrics(0, 0.5), 59).demand;
        assert!((last - raw).abs() < raw * 0.5 + 1e-6);
    }

    #[test]
    fn smaller_alpha_reacts_slower_to_jumps() {
        let run = |alpha: f64| {
            let mut s = smoothed(alpha);
            s.observe(&[metrics(0, 0.1)], 1);
            s.observe(&[metrics(0, 0.1)], 2);
            // Sudden spike at round 3.
            s.observe(&[metrics(0, 0.95)], 3)[0].demand
        };
        let fast = run(0.9);
        let slow = run(0.1);
        assert!(slow < fast, "slow EWMA {slow} should lag fast {fast}");
    }

    #[test]
    fn per_microservice_state_is_independent() {
        let mut s = smoothed(0.5);
        s.observe(&[metrics(0, 0.9), metrics(1, 0.1)], 1);
        let a = s.current(MicroserviceId::new(0)).unwrap();
        let b = s.current(MicroserviceId::new(1)).unwrap();
        assert!(a > b);
        assert!(s.current(MicroserviceId::new(9)).is_none());
    }

    #[test]
    fn reset_clears_history() {
        let mut s = smoothed(0.5);
        s.observe(&[metrics(0, 0.5)], 1);
        assert!(s.current(MicroserviceId::new(0)).is_some());
        s.reset();
        assert!(s.current(MicroserviceId::new(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "EWMA weight")]
    fn rejects_zero_alpha() {
        smoothed(0.0);
    }

    #[test]
    #[should_panic(expected = "EWMA weight")]
    fn rejects_alpha_above_one() {
        smoothed(1.5);
    }
}
