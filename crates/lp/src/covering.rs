//! Exact solver for the *group knapsack-cover* problem.
//!
//! This is the offline single-round Winner Selection Problem of the paper
//! specialized to integer resource amounts: each seller (group) offers up
//! to `J` alternative bids, at most one may be chosen per seller
//! (constraint (9) of ILP (7)), and the chosen bids' amounts must reach an
//! aggregate demand `X^t` (constraint (10)) at minimum total price.
//!
//! The dynamic program runs in `O(Σ_g |bids_g| · X)` — effectively instant
//! at the paper's scales — and gives a *provably exact* optimum to divide
//! by in the performance-ratio figures, independently cross-checking the
//! branch-and-bound solver in [`crate::ilp`].
//!
//! # Examples
//!
//! ```
//! use edge_lp::covering::{CoverOption, GroupCover};
//!
//! let inst = GroupCover::new(
//!     3,
//!     vec![
//!         vec![CoverOption::new(6.0, 2), CoverOption::new(2.0, 1)],
//!         vec![CoverOption::new(5.0, 2), CoverOption::new(9.0, 3)],
//!     ],
//! );
//! let sol = inst.solve_exact().expect("feasible");
//! assert_eq!(sol.cost, 7.0); // seller 0 bid 1 ($2,1u) + seller 1 bid 0 ($5,2u)
//! assert_eq!(sol.chosen, vec![Some(1), Some(0)]);
//! ```

use serde::{Deserialize, Serialize};

/// One alternative bid of a seller: a price for a resource amount.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverOption {
    /// Total price asked for the full amount.
    pub cost: f64,
    /// Resource units offered (integer grid).
    pub amount: u64,
}

impl CoverOption {
    /// Creates a cover option.
    ///
    /// # Panics
    ///
    /// Panics if `cost` is negative or not finite — covering costs are
    /// prices and must be well-formed.
    pub fn new(cost: f64, amount: u64) -> Self {
        assert!(
            cost.is_finite() && cost >= 0.0,
            "cover option cost must be finite and >= 0"
        );
        CoverOption { cost, amount }
    }
}

/// A group knapsack-cover instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupCover {
    demand: u64,
    groups: Vec<Vec<CoverOption>>,
}

/// An exact solution: total cost plus the chosen option index per group
/// (`None` = the group sells nothing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverSolution {
    /// Minimum total cost meeting the demand.
    pub cost: f64,
    /// Chosen option per group.
    pub chosen: Vec<Option<usize>>,
}

impl GroupCover {
    /// Creates an instance with the given aggregate demand and per-group
    /// option lists.
    pub fn new(demand: u64, groups: Vec<Vec<CoverOption>>) -> Self {
        GroupCover { demand, groups }
    }

    /// The aggregate demand to be covered.
    pub fn demand(&self) -> u64 {
        self.demand
    }

    /// The per-group option lists.
    pub fn groups(&self) -> &[Vec<CoverOption>] {
        &self.groups
    }

    /// Maximum coverable amount: the sum over groups of each group's
    /// largest single offer (at most one option per group may be chosen).
    pub fn total_supply(&self) -> u64 {
        self.groups
            .iter()
            .map(|g| g.iter().map(|o| o.amount).max().unwrap_or(0))
            .sum()
    }

    /// Solves the instance exactly by dynamic programming.
    ///
    /// Returns `None` when the demand exceeds [`total_supply`]
    /// (infeasible).
    ///
    /// [`total_supply`]: Self::total_supply
    pub fn solve_exact(&self) -> Option<CoverSolution> {
        if self.total_supply() < self.demand {
            return None;
        }
        let x = self.demand as usize;
        let g = self.groups.len();

        // dp[d] = min cost achieving coverage level d (capped at x),
        // layered per group so choices can be reconstructed.
        const INF: f64 = f64::INFINITY;
        let mut dp = vec![INF; x + 1];
        dp[0] = 0.0;
        // choice[layer][d] = (prev_d, chosen option) reaching state d
        // after processing group `layer`.
        let mut choice: Vec<Vec<(usize, Option<usize>)>> = Vec::with_capacity(g);

        for group in &self.groups {
            let mut next = dp.clone(); // skipping the group
            let mut ch: Vec<(usize, Option<usize>)> = (0..=x).map(|d| (d, None)).collect();
            for (oi, opt) in group.iter().enumerate() {
                for (d, &dp_d) in dp.iter().enumerate() {
                    if dp_d == INF {
                        continue;
                    }
                    let nd = (d + opt.amount as usize).min(x);
                    let cost = dp_d + opt.cost;
                    if cost < next[nd] {
                        next[nd] = cost;
                        ch[nd] = (d, Some(oi));
                    }
                }
            }
            dp = next;
            choice.push(ch);
        }

        if dp[x] == INF {
            return None;
        }

        // Reconstruct choices backwards.
        let mut chosen = vec![None; g];
        let mut d = x;
        for layer in (0..g).rev() {
            let (prev_d, opt) = choice[layer][d];
            chosen[layer] = opt;
            d = prev_d;
        }

        Some(CoverSolution {
            cost: dp[x],
            chosen,
        })
    }

    /// A fast *lower bound* on the optimal cost: fractional covering by
    /// ascending unit price, ignoring the one-bid-per-group constraint.
    ///
    /// Useful as a pruning bound and as a sanity check (`lower_bound() <=
    /// solve_exact().cost` always).
    pub fn fractional_lower_bound(&self) -> f64 {
        let mut offers: Vec<(f64, u64)> = self
            .groups
            .iter()
            .flatten()
            .filter(|o| o.amount > 0)
            .map(|o| (o.cost / o.amount as f64, o.amount))
            .collect();
        offers.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut remaining = self.demand;
        let mut cost = 0.0;
        for (unit, amount) in offers {
            if remaining == 0 {
                break;
            }
            let take = remaining.min(amount);
            cost += unit * take as f64;
            remaining -= take;
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solves_doc_example() {
        let inst = GroupCover::new(
            3,
            vec![
                vec![CoverOption::new(6.0, 2), CoverOption::new(2.0, 1)],
                vec![CoverOption::new(5.0, 2), CoverOption::new(9.0, 3)],
            ],
        );
        let sol = inst.solve_exact().unwrap();
        assert_eq!(sol.cost, 7.0);
        assert_eq!(sol.chosen, vec![Some(1), Some(0)]);
    }

    #[test]
    fn zero_demand_costs_nothing() {
        let inst = GroupCover::new(0, vec![vec![CoverOption::new(5.0, 2)]]);
        let sol = inst.solve_exact().unwrap();
        assert_eq!(sol.cost, 0.0);
        assert_eq!(sol.chosen, vec![None]);
    }

    #[test]
    fn infeasible_returns_none() {
        let inst = GroupCover::new(10, vec![vec![CoverOption::new(1.0, 3)]]);
        assert!(inst.solve_exact().is_none());
        assert_eq!(inst.total_supply(), 3);
    }

    #[test]
    fn at_most_one_option_per_group() {
        // A single group with two cheap bids cannot combine them.
        let inst = GroupCover::new(
            4,
            vec![
                vec![CoverOption::new(1.0, 2), CoverOption::new(1.0, 2)],
                vec![CoverOption::new(10.0, 2)],
            ],
        );
        let sol = inst.solve_exact().unwrap();
        // Must take one bid from each group: 1 + 10.
        assert_eq!(sol.cost, 11.0);
    }

    #[test]
    fn empty_groups_are_skippable() {
        let inst = GroupCover::new(2, vec![vec![], vec![CoverOption::new(3.0, 2)]]);
        let sol = inst.solve_exact().unwrap();
        assert_eq!(sol.cost, 3.0);
        assert_eq!(sol.chosen, vec![None, Some(0)]);
    }

    #[test]
    fn lower_bound_is_a_lower_bound() {
        let inst = GroupCover::new(
            5,
            vec![
                vec![CoverOption::new(6.0, 3), CoverOption::new(3.0, 1)],
                vec![CoverOption::new(4.0, 2)],
                vec![CoverOption::new(9.0, 4)],
            ],
        );
        let sol = inst.solve_exact().unwrap();
        assert!(inst.fractional_lower_bound() <= sol.cost + 1e-9);
    }

    /// Exhaustive reference: try every combination of (at most one option
    /// per group).
    fn brute_force(inst: &GroupCover) -> Option<f64> {
        fn rec(inst: &GroupCover, g: usize, covered: u64, cost: f64, best: &mut Option<f64>) {
            if covered >= inst.demand() {
                *best = Some(best.map_or(cost, |b: f64| b.min(cost)));
                // Choosing more bids only adds cost — still recurse to keep
                // the reference dead simple? No: pruning here is safe since
                // costs are non-negative.
                return;
            }
            if g == inst.groups().len() {
                return;
            }
            rec(inst, g + 1, covered, cost, best);
            for opt in &inst.groups()[g] {
                rec(inst, g + 1, covered + opt.amount, cost + opt.cost, best);
            }
        }
        let mut best = None;
        rec(inst, 0, 0, 0.0, &mut best);
        best
    }

    proptest! {
        #[test]
        fn dp_matches_brute_force(
            demand in 0u64..12,
            groups in proptest::collection::vec(
                proptest::collection::vec((0u32..30, 0u64..6), 0..3),
                0..6,
            ),
        ) {
            let groups: Vec<Vec<CoverOption>> = groups
                .into_iter()
                .map(|g| g.into_iter().map(|(c, a)| CoverOption::new(c as f64, a)).collect())
                .collect();
            let inst = GroupCover::new(demand, groups);
            let dp = inst.solve_exact();
            let bf = brute_force(&inst);
            match (dp, bf) {
                (None, None) => {}
                (Some(sol), Some(cost)) => {
                    prop_assert!((sol.cost - cost).abs() < 1e-9,
                        "dp {} vs brute force {}", sol.cost, cost);
                    // The reconstructed choices must actually attain the
                    // cost and the demand.
                    let mut total_cost = 0.0;
                    let mut covered = 0u64;
                    for (g, ch) in inst.groups().iter().zip(&sol.chosen) {
                        if let Some(oi) = ch {
                            total_cost += g[*oi].cost;
                            covered += g[*oi].amount;
                        }
                    }
                    prop_assert!((total_cost - sol.cost).abs() < 1e-9);
                    prop_assert!(covered >= inst.demand());
                }
                (dp, bf) => prop_assert!(false, "feasibility mismatch: dp={dp:?} bf={bf:?}"),
            }
        }

        #[test]
        fn lower_bound_never_exceeds_optimum(
            demand in 0u64..10,
            groups in proptest::collection::vec(
                proptest::collection::vec((1u32..30, 1u64..6), 1..3),
                1..6,
            ),
        ) {
            let groups: Vec<Vec<CoverOption>> = groups
                .into_iter()
                .map(|g| g.into_iter().map(|(c, a)| CoverOption::new(c as f64, a)).collect())
                .collect();
            let inst = GroupCover::new(demand, groups);
            if let Some(sol) = inst.solve_exact() {
                prop_assert!(inst.fractional_lower_bound() <= sol.cost + 1e-9);
            }
        }
    }
}
