//! Error types for the LP/ILP solvers.

use std::error::Error;
use std::fmt;

/// Errors raised while building or solving a model.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// A coefficient, bound, or right-hand side was NaN or infinite where
    /// a finite value is required.
    NonFiniteInput {
        /// What was being set when the invalid value appeared.
        context: &'static str,
    },
    /// A constraint or objective referenced a variable id that does not
    /// exist in the model.
    UnknownVariable {
        /// The offending variable index.
        index: usize,
        /// Number of variables in the model.
        len: usize,
    },
    /// A variable was declared with `lower > upper`.
    EmptyDomain {
        /// Variable index with the empty domain.
        index: usize,
    },
    /// The model has no feasible solution.
    Infeasible,
    /// The objective can be improved without bound.
    Unbounded,
    /// The branch-and-bound node budget was exhausted before optimality
    /// was proven and no incumbent was found.
    NodeLimit,
    /// The simplex iteration safeguard tripped; the model is numerically
    /// pathological.
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::NonFiniteInput { context } => {
                write!(f, "non-finite value supplied while {context}")
            }
            LpError::UnknownVariable { index, len } => {
                write!(
                    f,
                    "variable index {index} out of range for model with {len} variables"
                )
            }
            LpError::EmptyDomain { index } => {
                write!(f, "variable {index} has lower bound above its upper bound")
            }
            LpError::Infeasible => write!(f, "model is infeasible"),
            LpError::Unbounded => write!(f, "model is unbounded"),
            LpError::NodeLimit => write!(f, "branch-and-bound node limit reached"),
            LpError::IterationLimit => write!(f, "simplex iteration limit reached"),
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(LpError::Infeasible.to_string().contains("infeasible"));
        assert!(LpError::UnknownVariable { index: 9, len: 3 }
            .to_string()
            .contains('9'));
        assert!(LpError::NonFiniteInput {
            context: "adding a constraint"
        }
        .to_string()
        .contains("adding a constraint"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<E: Error + Send + Sync + 'static>() {}
        assert_bounds::<LpError>();
    }
}
