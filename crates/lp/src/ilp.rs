//! Branch-and-bound solver for mixed-integer models.
//!
//! Used to compute the *offline optimal* social cost that every
//! performance-ratio figure of the paper divides by. The search is
//! best-first on the LP-relaxation bound with most-fractional branching,
//! which closes the small covering ILPs of the paper (tens to a few
//! hundred binaries) quickly.
//!
//! # Examples
//!
//! ```
//! use edge_lp::model::{Model, ConstraintOp};
//! use edge_lp::ilp::{solve_ilp, IlpOptions};
//!
//! # fn main() -> Result<(), edge_lp::LpError> {
//! // Weighted set cover: pick bids covering >= 3 units at min cost.
//! let mut m = Model::new();
//! let a = m.add_binary("a", 4.0)?; // 2 units
//! let b = m.add_binary("b", 3.0)?; // 2 units
//! let c = m.add_binary("c", 1.0)?; // 1 unit
//! m.add_constraint(vec![(a, 2.0), (b, 2.0), (c, 1.0)], ConstraintOp::Ge, 3.0)?;
//! let sol = solve_ilp(&m, &IlpOptions::default())?;
//! assert_eq!(sol.objective.round() as i64, 4); // b + c
//! # Ok(())
//! # }
//! ```

use crate::error::LpError;
use crate::model::Model;
use crate::simplex::solve_lp;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Tuning knobs for [`solve_ilp`].
#[derive(Debug, Clone)]
pub struct IlpOptions {
    /// Maximum number of branch-and-bound nodes to explore.
    pub max_nodes: usize,
    /// Tolerance for accepting a relaxation value as integral.
    pub int_tol: f64,
    /// Absolute optimality gap below which a node is pruned.
    pub gap_tol: f64,
}

impl Default for IlpOptions {
    fn default() -> Self {
        IlpOptions {
            max_nodes: 200_000,
            int_tol: 1e-6,
            gap_tol: 1e-9,
        }
    }
}

/// Result of a branch-and-bound run.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpSolution {
    /// Objective of the best integral solution found.
    pub objective: f64,
    /// The best integral point.
    pub x: Vec<f64>,
    /// `true` if the search proved optimality, `false` if the node budget
    /// ran out first (the solution is then the best incumbent).
    pub proven_optimal: bool,
    /// Number of nodes explored.
    pub nodes_explored: usize,
}

/// Total order on f64 bounds for the best-first heap.
#[derive(Debug, PartialEq)]
struct Bound(f64);

impl Eq for Bound {}

impl PartialOrd for Bound {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bound {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug)]
struct Node {
    bounds: Vec<(f64, f64)>,
}

/// Solves the mixed-integer model to (proven or budget-limited)
/// optimality.
///
/// # Errors
///
/// * [`LpError::Infeasible`] — no integral point exists.
/// * [`LpError::Unbounded`] — the relaxation is unbounded.
/// * [`LpError::NodeLimit`] — the budget ran out before *any* integral
///   solution was found.
/// * Propagates simplex errors from relaxation solves.
pub fn solve_ilp(model: &Model, opts: &IlpOptions) -> Result<IlpSolution, LpError> {
    solve_ilp_with_incumbent(model, opts, None)
}

/// Like [`solve_ilp`], but warm-started from a known feasible integral
/// point (e.g. a greedy solution). The incumbent prunes the tree from
/// node one, which typically shrinks the search by an order of magnitude
/// on covering instances.
///
/// # Errors
///
/// As [`solve_ilp`]; additionally [`LpError::NonFiniteInput`] if the
/// warm-start point is infeasible, non-integral on integer variables, or
/// of the wrong dimension.
pub fn solve_ilp_with_incumbent(
    model: &Model,
    opts: &IlpOptions,
    warm_start: Option<&[f64]>,
) -> Result<IlpSolution, LpError> {
    let int_vars: Vec<usize> = (0..model.num_vars())
        .filter(|&i| model.variables[i].integer)
        .collect();

    let initial_incumbent: Option<(f64, Vec<f64>)> = match warm_start {
        None => None,
        Some(x) => {
            let valid = x.len() == model.num_vars()
                && model.is_feasible(x, 1e-6)
                && int_vars.iter().all(|&i| (x[i] - x[i].round()).abs() < 1e-6);
            if !valid {
                return Err(LpError::NonFiniteInput {
                    context: "validating the warm-start point",
                });
            }
            Some((model.objective_value(x), x.to_vec()))
        }
    };

    let root_bounds: Vec<(f64, f64)> = model.variables.iter().map(|v| (v.lower, v.upper)).collect();

    let mut work = model.clone();
    let relax = |bounds: &[(f64, f64)], work: &mut Model| -> Result<_, LpError> {
        for (i, &(lo, hi)) in bounds.iter().enumerate() {
            work.variables[i].lower = lo;
            work.variables[i].upper = hi;
        }
        solve_lp(work)
    };

    // Root relaxation.
    let root = relax(&root_bounds, &mut work)?;

    let mut heap: BinaryHeap<(Reverse<Bound>, usize)> = BinaryHeap::new();
    let mut nodes: Vec<Node> = vec![Node {
        bounds: root_bounds,
    }];
    heap.push((Reverse(Bound(root.objective)), 0));

    let mut incumbent: Option<(f64, Vec<f64>)> = initial_incumbent;
    let mut explored = 0usize;

    while let Some((Reverse(Bound(bound)), idx)) = heap.pop() {
        if explored >= opts.max_nodes {
            return match incumbent {
                Some((obj, x)) => Ok(IlpSolution {
                    objective: obj,
                    x,
                    proven_optimal: false,
                    nodes_explored: explored,
                }),
                None => Err(LpError::NodeLimit),
            };
        }
        if let Some((best, _)) = &incumbent {
            if bound >= *best - opts.gap_tol {
                continue; // pruned by bound
            }
        }
        explored += 1;
        let node_bounds = std::mem::take(&mut nodes[idx].bounds);

        let sol = match relax(&node_bounds, &mut work) {
            Ok(s) => s,
            Err(LpError::Infeasible) => continue,
            Err(e) => return Err(e),
        };
        if let Some((best, _)) = &incumbent {
            if sol.objective >= *best - opts.gap_tol {
                continue;
            }
        }

        // Find the most fractional integer variable.
        let mut branch_var = None;
        let mut worst_frac = opts.int_tol;
        for &i in &int_vars {
            let frac = (sol.x[i] - sol.x[i].round()).abs();
            if frac > worst_frac {
                worst_frac = frac;
                branch_var = Some(i);
            }
        }

        match branch_var {
            None => {
                // Integral: round snapped values to exact integers.
                let mut x = sol.x.clone();
                for &i in &int_vars {
                    x[i] = x[i].round();
                }
                let obj = model.objective_value(&x);
                if incumbent.as_ref().is_none_or(|(best, _)| obj < *best) {
                    incumbent = Some((obj, x));
                }
            }
            Some(i) => {
                let xi = sol.x[i];
                let (lo, hi) = node_bounds[i];
                // Down branch: x_i <= floor(xi).
                let down_hi = xi.floor();
                if down_hi >= lo {
                    let mut b = node_bounds.clone();
                    b[i] = (lo, down_hi);
                    nodes.push(Node { bounds: b });
                    heap.push((Reverse(Bound(sol.objective)), nodes.len() - 1));
                }
                // Up branch: x_i >= ceil(xi).
                let up_lo = xi.ceil();
                if up_lo <= hi {
                    let mut b = node_bounds;
                    b[i] = (up_lo, hi);
                    nodes.push(Node { bounds: b });
                    heap.push((Reverse(Bound(sol.objective)), nodes.len() - 1));
                }
            }
        }
    }

    match incumbent {
        Some((obj, x)) => Ok(IlpSolution {
            objective: obj,
            x,
            proven_optimal: true,
            nodes_explored: explored,
        }),
        None => Err(LpError::Infeasible),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Model};

    #[test]
    fn knapsack_cover_is_exact() {
        // min 5a + 4b + 3c s.t. 2a + 3b + c >= 4, binaries.
        // Candidates: b+c (7, covers 4), a+b (9), a+c (8, covers 3: no).
        let mut m = Model::new();
        let a = m.add_binary("a", 5.0).unwrap();
        let b = m.add_binary("b", 4.0).unwrap();
        let c = m.add_binary("c", 3.0).unwrap();
        m.add_constraint(vec![(a, 2.0), (b, 3.0), (c, 1.0)], ConstraintOp::Ge, 4.0)
            .unwrap();
        let sol = solve_ilp(&m, &IlpOptions::default()).unwrap();
        assert!(sol.proven_optimal);
        assert!(
            (sol.objective - 7.0).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
        assert_eq!(sol.x, vec![0.0, 1.0, 1.0]);
    }

    #[test]
    fn pure_lp_passes_through() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 4.0, -1.0).unwrap();
        m.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 2.5)
            .unwrap();
        let sol = solve_ilp(&m, &IlpOptions::default()).unwrap();
        assert!((sol.objective + 2.5).abs() < 1e-6);
    }

    #[test]
    fn integer_infeasible_detected() {
        // 2x == 1 for binary x has a fractional LP solution but no
        // integral one.
        let mut m = Model::new();
        let x = m.add_binary("x", 1.0).unwrap();
        m.add_constraint(vec![(x, 2.0)], ConstraintOp::Eq, 1.0)
            .unwrap();
        assert_eq!(
            solve_ilp(&m, &IlpOptions::default()),
            Err(LpError::Infeasible)
        );
    }

    #[test]
    fn at_most_one_per_group_cover() {
        // Two sellers, two bids each; pick at most one per seller to cover
        // demand 3: s1 offers (2 units, $6) or (1 unit, $2); s2 offers
        // (2 units, $5) or (3 units, $9).
        let mut m = Model::new();
        let s1a = m.add_binary("s1a", 6.0).unwrap();
        let s1b = m.add_binary("s1b", 2.0).unwrap();
        let s2a = m.add_binary("s2a", 5.0).unwrap();
        let s2b = m.add_binary("s2b", 9.0).unwrap();
        m.add_constraint(vec![(s1a, 1.0), (s1b, 1.0)], ConstraintOp::Le, 1.0)
            .unwrap();
        m.add_constraint(vec![(s2a, 1.0), (s2b, 1.0)], ConstraintOp::Le, 1.0)
            .unwrap();
        m.add_constraint(
            vec![(s1a, 2.0), (s1b, 1.0), (s2a, 2.0), (s2b, 3.0)],
            ConstraintOp::Ge,
            3.0,
        )
        .unwrap();
        let sol = solve_ilp(&m, &IlpOptions::default()).unwrap();
        // Best: s1b ($2, 1u) + s2a ($5, 2u) = $7 covering 3.
        assert!(
            (sol.objective - 7.0).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
    }

    #[test]
    fn node_limit_without_incumbent_errors() {
        let mut m = Model::new();
        let vars: Vec<_> = (0..8)
            .map(|i| m.add_binary(&format!("x{i}"), 1.0).unwrap())
            .collect();
        // Σ 2x_i == 7 — infeasible in integers; with a node budget of one
        // node we cannot even find an incumbent.
        m.add_constraint(
            vars.iter().map(|&v| (v, 2.0)).collect(),
            ConstraintOp::Eq,
            7.0,
        )
        .unwrap();
        let opts = IlpOptions {
            max_nodes: 1,
            ..IlpOptions::default()
        };
        let r = solve_ilp(&m, &opts);
        assert!(matches!(
            r,
            Err(LpError::NodeLimit) | Err(LpError::Infeasible)
        ));
    }

    #[test]
    fn warm_start_preserves_the_optimum() {
        let mut m = Model::new();
        let a = m.add_binary("a", 5.0).unwrap();
        let b = m.add_binary("b", 4.0).unwrap();
        let c = m.add_binary("c", 3.0).unwrap();
        m.add_constraint(vec![(a, 2.0), (b, 3.0), (c, 1.0)], ConstraintOp::Ge, 4.0)
            .unwrap();
        // Feasible but suboptimal warm start: a + b (cost 9).
        let warm = vec![1.0, 1.0, 0.0];
        let sol = super::solve_ilp_with_incumbent(&m, &IlpOptions::default(), Some(&warm)).unwrap();
        assert!(sol.proven_optimal);
        assert!((sol.objective - 7.0).abs() < 1e-6);
    }

    #[test]
    fn warm_start_survives_tiny_node_budgets() {
        let mut m = Model::new();
        let vars: Vec<_> = (0..6)
            .map(|i| m.add_binary(&format!("x{i}"), (i + 1) as f64).unwrap())
            .collect();
        m.add_constraint(
            vars.iter().map(|&v| (v, 1.0)).collect(),
            ConstraintOp::Ge,
            3.0,
        )
        .unwrap();
        let warm = vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0];
        let opts = IlpOptions {
            max_nodes: 1,
            ..IlpOptions::default()
        };
        // With the warm incumbent, even a starved search returns a
        // solution instead of NodeLimit.
        let sol = super::solve_ilp_with_incumbent(&m, &opts, Some(&warm)).unwrap();
        assert!(sol.objective <= 6.0 + 1e-9);
    }

    #[test]
    fn invalid_warm_start_is_rejected() {
        let mut m = Model::new();
        let x = m.add_binary("x", 1.0).unwrap();
        m.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 1.0)
            .unwrap();
        // Wrong dimension.
        assert!(super::solve_ilp_with_incumbent(&m, &IlpOptions::default(), Some(&[])).is_err());
        // Infeasible point.
        assert!(super::solve_ilp_with_incumbent(&m, &IlpOptions::default(), Some(&[0.0])).is_err());
        // Fractional on an integer variable.
        assert!(super::solve_ilp_with_incumbent(&m, &IlpOptions::default(), Some(&[0.5])).is_err());
    }

    #[test]
    fn matches_exhaustive_on_random_covers() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(12);
        for trial in 0..25 {
            let n = rng.gen_range(2..=8);
            let costs: Vec<f64> = (0..n).map(|_| rng.gen_range(1..=20) as f64).collect();
            let amounts: Vec<f64> = (0..n).map(|_| rng.gen_range(1..=5) as f64).collect();
            let demand = rng.gen_range(1..=8) as f64;
            let total: f64 = amounts.iter().sum();

            let mut m = Model::new();
            let vars: Vec<_> = (0..n)
                .map(|i| m.add_binary(&format!("x{i}"), costs[i]).unwrap())
                .collect();
            m.add_constraint(
                vars.iter().zip(&amounts).map(|(&v, &a)| (v, a)).collect(),
                ConstraintOp::Ge,
                demand,
            )
            .unwrap();

            // Exhaustive reference.
            let mut best = f64::INFINITY;
            for mask in 0..(1u32 << n) {
                let cover: f64 = (0..n)
                    .filter(|&i| mask & (1 << i) != 0)
                    .map(|i| amounts[i])
                    .sum();
                if cover >= demand {
                    let cost: f64 = (0..n)
                        .filter(|&i| mask & (1 << i) != 0)
                        .map(|i| costs[i])
                        .sum();
                    best = best.min(cost);
                }
            }

            let r = solve_ilp(&m, &IlpOptions::default());
            if total < demand {
                assert_eq!(r, Err(LpError::Infeasible), "trial {trial}");
            } else {
                let sol = r.unwrap();
                assert!(sol.proven_optimal, "trial {trial}");
                assert!(
                    (sol.objective - best).abs() < 1e-6,
                    "trial {trial}: got {} want {best}",
                    sol.objective
                );
            }
        }
    }
}
