//! Linear-programming substrate for the `edge-market` workspace.
//!
//! The paper's evaluation divides every mechanism's social cost by the
//! **offline optimal** objective of the winner-selection ILP (Eq. 7/12).
//! The authors used an unnamed external solver; this crate provides that
//! substrate from scratch:
//!
//! * [`model`] — an incremental builder for linear / mixed-integer
//!   minimization models.
//! * [`simplex`] — a dense two-phase primal simplex for the continuous
//!   relaxations, with dual extraction.
//! * [`ilp`] — best-first branch-and-bound over the simplex for exact
//!   integer optima.
//! * [`covering`] — an independent exact dynamic program for the group
//!   knapsack-cover structure of the single-round WSP, used both as a
//!   fast offline-optimum oracle and as a cross-check on branch-and-bound.
//!
//! # Examples
//!
//! ```
//! use edge_lp::{Model, ConstraintOp, solve_ilp, IlpOptions};
//!
//! # fn main() -> Result<(), edge_lp::LpError> {
//! let mut m = Model::new();
//! let x = m.add_binary("x", 2.0)?;
//! let y = m.add_binary("y", 3.0)?;
//! m.add_constraint(vec![(x, 1.0), (y, 2.0)], ConstraintOp::Ge, 2.0)?;
//! let sol = solve_ilp(&m, &IlpOptions::default())?;
//! assert_eq!(sol.objective, 3.0); // y alone covers the demand
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod covering;
pub mod error;
pub mod ilp;
pub mod model;
pub mod presolve;
pub mod simplex;

pub use covering::{CoverOption, CoverSolution, GroupCover};
pub use error::LpError;
pub use ilp::{solve_ilp, solve_ilp_with_incumbent, IlpOptions, IlpSolution};
pub use model::{ConstraintId, ConstraintOp, Model, VarId};
pub use presolve::{presolve_cover, PresolveStats};
pub use simplex::{solve_lp, LpSolution};
