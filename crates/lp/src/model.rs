//! Linear/integer programming model builder.
//!
//! A [`Model`] is built incrementally: declare variables with
//! [`Model::add_var`] (or [`Model::add_binary`]), set their objective
//! coefficients, and add linear constraints with
//! [`Model::add_constraint`]. The objective sense is always
//! **minimization**, matching the social-cost formulation of the paper's
//! ILP (7)/(12); maximize by negating coefficients.
//!
//! # Examples
//!
//! ```
//! use edge_lp::model::{Model, ConstraintOp};
//! use edge_lp::simplex::solve_lp;
//!
//! # fn main() -> Result<(), edge_lp::LpError> {
//! // min 2x + 3y  s.t.  x + y >= 4,  x <= 3,  x,y >= 0
//! let mut m = Model::new();
//! let x = m.add_var("x", 0.0, 3.0, 2.0)?;
//! let y = m.add_var("y", 0.0, f64::INFINITY, 3.0)?;
//! m.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 4.0)?;
//! let sol = solve_lp(&m)?;
//! assert!((sol.objective - 9.0).abs() < 1e-7); // x=3, y=1
//! # Ok(())
//! # }
//! ```

use crate::error::LpError;
use serde::{Deserialize, Serialize};

/// Handle to a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Returns the dense index of this variable within its model.
    pub const fn index(self) -> usize {
        self.0
    }
}

/// Handle to a model constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConstraintId(pub(crate) usize);

impl ConstraintId {
    /// Returns the dense index of this constraint within its model.
    pub const fn index(self) -> usize {
        self.0
    }
}

/// Relational operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstraintOp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Variable {
    pub(crate) name: String,
    pub(crate) lower: f64,
    pub(crate) upper: f64,
    pub(crate) objective: f64,
    pub(crate) integer: bool,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Constraint {
    pub(crate) terms: Vec<(usize, f64)>,
    pub(crate) op: ConstraintOp,
    pub(crate) rhs: f64,
}

/// A linear (or mixed-integer) minimization model.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Model {
    pub(crate) variables: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of variables declared so far.
    pub fn num_vars(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Returns the handle of the `index`-th declared variable, if it
    /// exists.
    ///
    /// # Examples
    ///
    /// ```
    /// use edge_lp::model::Model;
    /// let mut m = Model::new();
    /// let x = m.add_var("x", 0.0, 1.0, 0.0)?;
    /// assert_eq!(m.var(0), Some(x));
    /// assert_eq!(m.var(1), None);
    /// # Ok::<(), edge_lp::LpError>(())
    /// ```
    pub fn var(&self, index: usize) -> Option<VarId> {
        (index < self.variables.len()).then_some(VarId(index))
    }

    /// Declares a continuous variable with bounds `[lower, upper]` and the
    /// given objective coefficient.
    ///
    /// `upper` may be `f64::INFINITY` for an unbounded-above variable;
    /// `lower` must be finite (the paper's models are all non-negative).
    ///
    /// # Errors
    ///
    /// * [`LpError::NonFiniteInput`] if `lower` or `objective` is not
    ///   finite, or `upper` is NaN / `-inf`.
    /// * [`LpError::EmptyDomain`] if `lower > upper`.
    pub fn add_var(
        &mut self,
        name: &str,
        lower: f64,
        upper: f64,
        objective: f64,
    ) -> Result<VarId, LpError> {
        if !lower.is_finite()
            || !objective.is_finite()
            || upper.is_nan()
            || upper == f64::NEG_INFINITY
        {
            return Err(LpError::NonFiniteInput {
                context: "declaring a variable",
            });
        }
        if lower > upper {
            return Err(LpError::EmptyDomain {
                index: self.variables.len(),
            });
        }
        self.variables.push(Variable {
            name: name.to_owned(),
            lower,
            upper,
            objective,
            integer: false,
        });
        Ok(VarId(self.variables.len() - 1))
    }

    /// Declares a binary (0/1 integer) variable with the given objective
    /// coefficient — the `x_ij^t` decision variables of ILP (12).
    ///
    /// # Errors
    ///
    /// Returns [`LpError::NonFiniteInput`] if `objective` is not finite.
    pub fn add_binary(&mut self, name: &str, objective: f64) -> Result<VarId, LpError> {
        let id = self.add_var(name, 0.0, 1.0, objective)?;
        self.variables[id.0].integer = true;
        Ok(id)
    }

    /// Marks an existing variable as integer-constrained.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::UnknownVariable`] for an out-of-range id.
    pub fn set_integer(&mut self, var: VarId) -> Result<(), LpError> {
        self.check_var(var)?;
        self.variables[var.0].integer = true;
        Ok(())
    }

    /// Returns `true` if the variable is integer-constrained.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::UnknownVariable`] for an out-of-range id.
    pub fn is_integer(&self, var: VarId) -> Result<bool, LpError> {
        self.check_var(var)?;
        Ok(self.variables[var.0].integer)
    }

    /// Overwrites the bounds of an existing variable (used by
    /// branch-and-bound to branch).
    ///
    /// # Errors
    ///
    /// * [`LpError::UnknownVariable`] for an out-of-range id.
    /// * [`LpError::EmptyDomain`] if `lower > upper`.
    /// * [`LpError::NonFiniteInput`] on NaN bounds.
    pub fn set_bounds(&mut self, var: VarId, lower: f64, upper: f64) -> Result<(), LpError> {
        self.check_var(var)?;
        if lower.is_nan() || upper.is_nan() || !lower.is_finite() && lower != f64::NEG_INFINITY {
            return Err(LpError::NonFiniteInput {
                context: "setting variable bounds",
            });
        }
        if lower > upper {
            return Err(LpError::EmptyDomain { index: var.0 });
        }
        self.variables[var.0].lower = lower;
        self.variables[var.0].upper = upper;
        Ok(())
    }

    /// Returns the `(lower, upper)` bounds of a variable.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::UnknownVariable`] for an out-of-range id.
    pub fn bounds(&self, var: VarId) -> Result<(f64, f64), LpError> {
        self.check_var(var)?;
        let v = &self.variables[var.0];
        Ok((v.lower, v.upper))
    }

    /// Adds the linear constraint `Σ coef·var (op) rhs`.
    ///
    /// Duplicate variable mentions are summed.
    ///
    /// # Errors
    ///
    /// * [`LpError::UnknownVariable`] if any term references a missing
    ///   variable.
    /// * [`LpError::NonFiniteInput`] for non-finite coefficients or rhs.
    pub fn add_constraint(
        &mut self,
        terms: Vec<(VarId, f64)>,
        op: ConstraintOp,
        rhs: f64,
    ) -> Result<ConstraintId, LpError> {
        if !rhs.is_finite() {
            return Err(LpError::NonFiniteInput {
                context: "adding a constraint",
            });
        }
        let mut dense: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
        for (var, coef) in terms {
            self.check_var(var)?;
            if !coef.is_finite() {
                return Err(LpError::NonFiniteInput {
                    context: "adding a constraint",
                });
            }
            match dense.iter_mut().find(|(i, _)| *i == var.0) {
                Some((_, c)) => *c += coef,
                None => dense.push((var.0, coef)),
            }
        }
        self.constraints.push(Constraint {
            terms: dense,
            op,
            rhs,
        });
        Ok(ConstraintId(self.constraints.len() - 1))
    }

    /// Evaluates the objective at a point.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_vars()`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_vars(), "point dimension mismatch");
        self.variables
            .iter()
            .zip(x)
            .map(|(v, &xi)| v.objective * xi)
            .sum()
    }

    /// Checks whether a point satisfies every constraint and bound within
    /// tolerance `tol`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_vars()`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        assert_eq!(x.len(), self.num_vars(), "point dimension mismatch");
        for (v, &xi) in self.variables.iter().zip(x) {
            if xi < v.lower - tol || xi > v.upper + tol {
                return false;
            }
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.terms.iter().map(|&(i, coef)| coef * x[i]).sum();
            match c.op {
                ConstraintOp::Le => lhs <= c.rhs + tol,
                ConstraintOp::Ge => lhs >= c.rhs - tol,
                ConstraintOp::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }

    /// Returns the name of a variable (useful in solver diagnostics).
    ///
    /// # Errors
    ///
    /// Returns [`LpError::UnknownVariable`] for an out-of-range id.
    pub fn var_name(&self, var: VarId) -> Result<&str, LpError> {
        self.check_var(var)?;
        Ok(&self.variables[var.0].name)
    }

    fn check_var(&self, var: VarId) -> Result<(), LpError> {
        if var.0 >= self.variables.len() {
            Err(LpError::UnknownVariable {
                index: var.0,
                len: self.variables.len(),
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_small_model() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0, 2.0).unwrap();
        let y = m.add_binary("y", 3.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 1.0)
            .unwrap();
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert!(m.is_integer(y).unwrap());
        assert!(!m.is_integer(x).unwrap());
        assert_eq!(m.var_name(x).unwrap(), "x");
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut m = Model::new();
        assert!(matches!(
            m.add_var("x", f64::NAN, 1.0, 0.0),
            Err(LpError::NonFiniteInput { .. })
        ));
        assert!(matches!(
            m.add_var("x", 2.0, 1.0, 0.0),
            Err(LpError::EmptyDomain { .. })
        ));
        let x = m.add_var("x", 0.0, 1.0, 1.0).unwrap();
        assert!(matches!(
            m.add_constraint(vec![(x, f64::INFINITY)], ConstraintOp::Le, 1.0),
            Err(LpError::NonFiniteInput { .. })
        ));
        assert!(matches!(
            m.add_constraint(vec![(VarId(9), 1.0)], ConstraintOp::Le, 1.0),
            Err(LpError::UnknownVariable { index: 9, len: 1 })
        ));
    }

    #[test]
    fn duplicate_terms_are_summed() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 10.0, 1.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (x, 2.0)], ConstraintOp::Le, 6.0)
            .unwrap();
        // 3x <= 6 means x = 2.5 is infeasible, x = 2 is feasible.
        assert!(m.is_feasible(&[2.0], 1e-9));
        assert!(!m.is_feasible(&[2.5], 1e-9));
    }

    #[test]
    fn feasibility_and_objective_evaluation() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 5.0, 2.0).unwrap();
        let y = m.add_var("y", 1.0, 5.0, -1.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 4.0)
            .unwrap();
        assert!(m.is_feasible(&[3.0, 1.0], 1e-9));
        assert!(!m.is_feasible(&[4.0, 1.0], 1e-9)); // eq violated
        assert!(!m.is_feasible(&[4.0, 0.0], 1e-9)); // y below bound
        assert_eq!(m.objective_value(&[3.0, 1.0]), 5.0);
    }

    #[test]
    fn set_bounds_branches() {
        let mut m = Model::new();
        let x = m.add_binary("x", 1.0).unwrap();
        m.set_bounds(x, 1.0, 1.0).unwrap();
        assert_eq!(m.bounds(x).unwrap(), (1.0, 1.0));
        assert!(matches!(
            m.set_bounds(x, 2.0, 1.0),
            Err(LpError::EmptyDomain { .. })
        ));
    }
}
