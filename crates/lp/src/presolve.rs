//! Presolve reductions for covering instances.
//!
//! Before the exact solvers run, obviously useless structure can be
//! stripped without changing the optimum:
//!
//! * **dominated options** — within one group, an option that costs at
//!   least as much as another while offering no more units can never be
//!   part of an optimal solution (the cheaper/bigger one substitutes);
//! * **zero-amount options** — contribute nothing at positive cost;
//! * **empty groups** — sellers with no usable options.
//!
//! On the paper's instances (J alternative bids per seller) domination
//! removes roughly half the options, which halves the DP work and
//! shrinks branch-and-bound trees.

use crate::covering::{CoverOption, GroupCover};

/// Statistics from one presolve pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PresolveStats {
    /// Options dropped because another option dominated them.
    pub dominated_removed: usize,
    /// Options dropped for offering zero units.
    pub zero_amount_removed: usize,
    /// Groups that became empty and were dropped.
    pub empty_groups_removed: usize,
}

/// Returns a reduced instance with the same optimal cost, plus what was
/// removed.
///
/// Group order is preserved for non-empty groups; option order within a
/// group is preserved for surviving options, so choice indices of the
/// reduced instance map monotonically into the original.
pub fn presolve_cover(instance: &GroupCover) -> (GroupCover, PresolveStats) {
    let mut stats = PresolveStats::default();
    let mut groups: Vec<Vec<CoverOption>> = Vec::with_capacity(instance.groups().len());
    for group in instance.groups() {
        let mut kept: Vec<CoverOption> = Vec::with_capacity(group.len());
        for (i, opt) in group.iter().enumerate() {
            if opt.amount == 0 {
                stats.zero_amount_removed += 1;
                continue;
            }
            // Dominated by any *other* option that is no worse on both
            // axes (ties broken toward the earlier option so exactly one
            // of two identical options survives).
            let dominated = group.iter().enumerate().any(|(j, other)| {
                if i == j || other.amount == 0 {
                    return false;
                }
                let weakly = other.amount >= opt.amount && other.cost <= opt.cost;
                let strictly = other.amount > opt.amount || other.cost < opt.cost;
                weakly && (strictly || j < i)
            });
            if dominated {
                stats.dominated_removed += 1;
            } else {
                kept.push(*opt);
            }
        }
        if kept.is_empty() {
            stats.empty_groups_removed += 1;
        } else {
            groups.push(kept);
        }
    }
    (GroupCover::new(instance.demand(), groups), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn opt(cost: f64, amount: u64) -> CoverOption {
        CoverOption::new(cost, amount)
    }

    #[test]
    fn removes_dominated_options() {
        let inst = GroupCover::new(
            3,
            vec![vec![
                opt(5.0, 2), // dominated by (4.0, 3)
                opt(4.0, 3),
                opt(3.0, 1), // cheaper but smaller: kept
            ]],
        );
        let (reduced, stats) = presolve_cover(&inst);
        assert_eq!(stats.dominated_removed, 1);
        assert_eq!(reduced.groups()[0].len(), 2);
        assert!(reduced.groups()[0].contains(&opt(4.0, 3)));
        assert!(reduced.groups()[0].contains(&opt(3.0, 1)));
    }

    #[test]
    fn identical_options_keep_exactly_one() {
        let inst = GroupCover::new(2, vec![vec![opt(4.0, 2), opt(4.0, 2), opt(4.0, 2)]]);
        let (reduced, stats) = presolve_cover(&inst);
        assert_eq!(reduced.groups()[0].len(), 1);
        assert_eq!(stats.dominated_removed, 2);
    }

    #[test]
    fn drops_zero_amounts_and_empty_groups() {
        let inst = GroupCover::new(1, vec![vec![opt(1.0, 0)], vec![opt(2.0, 2)]]);
        let (reduced, stats) = presolve_cover(&inst);
        assert_eq!(stats.zero_amount_removed, 1);
        assert_eq!(stats.empty_groups_removed, 1);
        assert_eq!(reduced.groups().len(), 1);
    }

    #[test]
    fn preserves_optimum_by_hand() {
        let inst = GroupCover::new(
            4,
            vec![
                vec![opt(6.0, 2), opt(2.0, 1), opt(7.0, 2)],
                vec![opt(5.0, 2), opt(9.0, 3)],
                vec![opt(4.0, 2)],
            ],
        );
        let (reduced, _) = presolve_cover(&inst);
        let a = inst.solve_exact().unwrap().cost;
        let b = reduced.solve_exact().unwrap().cost;
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn presolve_never_changes_the_optimum(
            demand in 0u64..12,
            groups in proptest::collection::vec(
                proptest::collection::vec((0u32..25, 0u64..6), 1..4),
                1..6,
            ),
        ) {
            let groups: Vec<Vec<CoverOption>> = groups
                .into_iter()
                .map(|g| g.into_iter().map(|(c, a)| opt(c as f64, a)).collect())
                .collect();
            let inst = GroupCover::new(demand, groups);
            let (reduced, _) = presolve_cover(&inst);
            match (inst.solve_exact(), reduced.solve_exact()) {
                (Some(a), Some(b)) => prop_assert!((a.cost - b.cost).abs() < 1e-9,
                    "presolve changed optimum: {} vs {}", a.cost, b.cost),
                (None, None) => {}
                (a, b) => prop_assert!(false, "feasibility changed: {a:?} vs {b:?}"),
            }
        }

        #[test]
        fn presolve_is_idempotent(
            demand in 0u64..10,
            groups in proptest::collection::vec(
                proptest::collection::vec((0u32..25, 1u64..6), 1..4),
                1..5,
            ),
        ) {
            let groups: Vec<Vec<CoverOption>> = groups
                .into_iter()
                .map(|g| g.into_iter().map(|(c, a)| opt(c as f64, a)).collect())
                .collect();
            let inst = GroupCover::new(demand, groups);
            let (once, _) = presolve_cover(&inst);
            let (twice, stats) = presolve_cover(&once);
            prop_assert_eq!(once, twice);
            prop_assert_eq!(stats, PresolveStats::default());
        }
    }
}
