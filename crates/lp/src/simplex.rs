//! Dense two-phase primal simplex.
//!
//! Solves the continuous relaxation of a [`Model`]: minimize `c'x` subject
//! to the model's linear constraints and variable bounds. Lower bounds are
//! handled by shifting, finite upper bounds by auxiliary rows, and
//! infeasibility/unboundedness are detected and reported as typed errors.
//!
//! The solver is deliberately dense and simple — the paper's winner
//! selection LPs have at most a few hundred variables and rows, where a
//! dense tableau is both fast and easy to verify. Anti-cycling is provided
//! by switching from Dantzig's rule to Bland's rule after a pivot budget.
//!
//! # Examples
//!
//! ```
//! use edge_lp::model::{Model, ConstraintOp};
//! use edge_lp::simplex::solve_lp;
//!
//! # fn main() -> Result<(), edge_lp::LpError> {
//! // Fractional set cover: min 3a + 2b  s.t.  a + b >= 1, a >= 0.25.
//! let mut m = Model::new();
//! let a = m.add_var("a", 0.0, f64::INFINITY, 3.0)?;
//! let b = m.add_var("b", 0.0, f64::INFINITY, 2.0)?;
//! m.add_constraint(vec![(a, 1.0), (b, 1.0)], ConstraintOp::Ge, 1.0)?;
//! m.add_constraint(vec![(a, 1.0)], ConstraintOp::Ge, 0.25)?;
//! let sol = solve_lp(&m)?;
//! assert!((sol.objective - (3.0 * 0.25 + 2.0 * 0.75)).abs() < 1e-7);
//! # Ok(())
//! # }
//! ```

use crate::error::LpError;
use crate::model::{ConstraintOp, Model};

/// Numerical tolerance for pivot eligibility and optimality tests.
const EPS: f64 = 1e-9;
/// Tolerance for declaring phase-1 success (zero artificial mass).
const FEAS_EPS: f64 = 1e-7;

/// A raw constraint row before standardisation:
/// `(terms, op, shifted rhs, index of the originating model constraint)`.
type RawRow = (Vec<(usize, f64)>, ConstraintOp, f64, Option<usize>);

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal objective value (minimization).
    pub objective: f64,
    /// Optimal primal point, one entry per model variable.
    pub x: Vec<f64>,
    /// Dual value per model constraint (Lagrange multiplier; `>= 0` for
    /// `Ge` rows, `<= 0` for `Le` rows, free for `Eq` rows in a
    /// minimization).
    pub duals: Vec<f64>,
}

/// Solves the continuous relaxation of `model` (integrality flags are
/// ignored).
///
/// # Errors
///
/// * [`LpError::Infeasible`] — no point satisfies all constraints.
/// * [`LpError::Unbounded`] — the objective decreases without bound.
/// * [`LpError::IterationLimit`] — the pivot safeguard tripped.
/// * [`LpError::NonFiniteInput`] — a variable has a non-finite lower
///   bound (unsupported).
pub fn solve_lp(model: &Model) -> Result<LpSolution, LpError> {
    Simplex::build(model)?.solve(model)
}

/// How each row recovers its dual value from final reduced costs.
#[derive(Debug, Clone, Copy)]
struct RowMeta {
    /// Index of the user constraint this row came from (`None` for upper
    /// bound rows).
    orig: Option<usize>,
    /// Column whose final reduced cost yields the dual, with the sign to
    /// apply (`+1`/`-1`; already negated for rows that were flipped to
    /// make the rhs non-negative).
    dual_col: usize,
    dual_sign: f64,
}

#[derive(Debug)]
struct Simplex {
    /// Constraint matrix rows (each `ncols` long).
    rows: Vec<Vec<f64>>,
    rhs: Vec<f64>,
    basis: Vec<usize>,
    /// Whether a column may enter the basis (artificials are barred in
    /// phase 2).
    allowed: Vec<bool>,
    /// Structural objective coefficients padded with zeros.
    costs: Vec<f64>,
    artificials: Vec<usize>,
    meta: Vec<RowMeta>,
    nstruct: usize,
    ncols: usize,
}

impl Simplex {
    fn build(model: &Model) -> Result<Self, LpError> {
        let n = model.num_vars();
        for v in &model.variables {
            if !v.lower.is_finite() {
                return Err(LpError::NonFiniteInput {
                    context: "solving: simplex requires finite lower bounds",
                });
            }
        }
        let lowers: Vec<f64> = model.variables.iter().map(|v| v.lower).collect();

        // Raw rows: user constraints then upper-bound rows, as
        // (coefs, op, rhs, orig_index).
        let mut raw: Vec<RawRow> = Vec::new();
        for (k, c) in model.constraints.iter().enumerate() {
            let shift: f64 = c.terms.iter().map(|&(i, a)| a * lowers[i]).sum();
            raw.push((c.terms.clone(), c.op, c.rhs - shift, Some(k)));
        }
        for (i, v) in model.variables.iter().enumerate() {
            if v.upper.is_finite() {
                raw.push((vec![(i, 1.0)], ConstraintOp::Le, v.upper - v.lower, None));
            }
        }

        let m = raw.len();
        // Column layout: [0, n) structural, then one slack/surplus per
        // Le/Ge row, then artificials.
        let mut nslack = 0;
        for (_, op, _, _) in &raw {
            if !matches!(op, ConstraintOp::Eq) {
                nslack += 1;
            }
        }
        // Upper bound on artificial count: one per row.
        let ncols_max = n + nslack + m;
        let mut rows = vec![vec![0.0; ncols_max]; m];
        let mut rhs = vec![0.0; m];
        let mut basis = vec![usize::MAX; m];
        let mut meta = Vec::with_capacity(m);
        let mut artificials = Vec::new();
        let mut next_slack = n;
        let mut next_art = n + nslack;

        for (r, (terms, op, b, orig)) in raw.into_iter().enumerate() {
            let flipped = b < 0.0;
            let sign = if flipped { -1.0 } else { 1.0 };
            for (i, a) in terms {
                rows[r][i] += sign * a;
            }
            rhs[r] = sign * b;
            let eff_op = match (op, flipped) {
                (ConstraintOp::Le, false) | (ConstraintOp::Ge, true) => ConstraintOp::Le,
                (ConstraintOp::Ge, false) | (ConstraintOp::Le, true) => ConstraintOp::Ge,
                (ConstraintOp::Eq, _) => ConstraintOp::Eq,
            };
            let (dual_col, dual_sign);
            match eff_op {
                ConstraintOp::Le => {
                    let s = next_slack;
                    next_slack += 1;
                    rows[r][s] = 1.0;
                    basis[r] = s;
                    // rc(slack) = -y  =>  y = -rc
                    dual_col = s;
                    dual_sign = -1.0;
                }
                ConstraintOp::Ge => {
                    let s = next_slack;
                    next_slack += 1;
                    rows[r][s] = -1.0;
                    let a = next_art;
                    next_art += 1;
                    rows[r][a] = 1.0;
                    basis[r] = a;
                    artificials.push(a);
                    // rc(artificial) = -y  =>  y = -rc
                    dual_col = a;
                    dual_sign = -1.0;
                }
                ConstraintOp::Eq => {
                    let a = next_art;
                    next_art += 1;
                    rows[r][a] = 1.0;
                    basis[r] = a;
                    artificials.push(a);
                    dual_col = a;
                    dual_sign = -1.0;
                }
            }
            meta.push(RowMeta {
                orig,
                dual_col,
                dual_sign: if flipped { -dual_sign } else { dual_sign },
            });
        }

        let ncols = next_art;
        for row in &mut rows {
            row.truncate(ncols);
        }
        let mut costs = vec![0.0; ncols];
        for (i, v) in model.variables.iter().enumerate() {
            costs[i] = v.objective;
        }
        let allowed = vec![true; ncols];

        Ok(Simplex {
            rows,
            rhs,
            basis,
            allowed,
            costs,
            artificials,
            meta,
            nstruct: n,
            ncols,
        })
    }

    fn solve(mut self, model: &Model) -> Result<LpSolution, LpError> {
        // ---- Phase 1: minimize artificial mass ----
        if !self.artificials.is_empty() {
            let art_set: Vec<bool> = {
                let mut s = vec![false; self.ncols];
                for &a in &self.artificials {
                    s[a] = true;
                }
                s
            };
            let phase1_costs: Vec<f64> = (0..self.ncols)
                .map(|j| if art_set[j] { 1.0 } else { 0.0 })
                .collect();
            let (mut r, mut neg_obj) = self.reduced_costs(&phase1_costs);
            self.run(&mut r, &mut neg_obj)?;
            let phase1_obj = -neg_obj;
            if phase1_obj > FEAS_EPS {
                return Err(LpError::Infeasible);
            }
            self.evict_basic_artificials(&art_set, &mut r, &mut neg_obj);
            for &a in &self.artificials {
                self.allowed[a] = false;
            }
        }

        // ---- Phase 2: original objective ----
        let costs = self.costs.clone();
        let (mut r, mut neg_obj) = self.reduced_costs(&costs);
        self.run(&mut r, &mut neg_obj)?;

        // Extract primal point (shift lower bounds back in).
        let mut x = vec![0.0; self.nstruct];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.nstruct {
                x[b] = self.rhs[i];
            }
        }
        let mut objective = 0.0;
        for (i, v) in model.variables.iter().enumerate() {
            x[i] += v.lower;
            objective += v.objective * x[i];
        }

        // Extract constraint duals from final reduced costs.
        let mut duals = vec![0.0; model.num_constraints()];
        for m_row in &self.meta {
            if let Some(k) = m_row.orig {
                duals[k] = m_row.dual_sign * r[m_row.dual_col];
            }
        }

        Ok(LpSolution {
            objective,
            x,
            duals,
        })
    }

    /// Computes the reduced-cost row and `-objective` for given costs.
    fn reduced_costs(&self, costs: &[f64]) -> (Vec<f64>, f64) {
        let mut r = costs.to_vec();
        let mut neg_obj = 0.0;
        for (i, &b) in self.basis.iter().enumerate() {
            let cb = costs[b];
            if cb != 0.0 {
                for (rj, &aij) in r.iter_mut().zip(&self.rows[i]) {
                    *rj -= cb * aij;
                }
                neg_obj -= cb * self.rhs[i];
            }
        }
        (r, neg_obj)
    }

    /// Pivots until optimality, using Dantzig then Bland.
    fn run(&mut self, r: &mut [f64], neg_obj: &mut f64) -> Result<(), LpError> {
        let m = self.rows.len();
        let budget_dantzig = 20 * (m + self.ncols) + 200;
        let budget_total = 200 * (m + self.ncols) + 2000;
        for iter in 0..budget_total {
            let bland = iter >= budget_dantzig;
            let Some(pc) = self.entering(r, bland) else {
                return Ok(());
            };
            let Some(pr) = self.leaving(pc) else {
                return Err(LpError::Unbounded);
            };
            self.pivot(pr, pc, r, neg_obj);
        }
        Err(LpError::IterationLimit)
    }

    fn entering(&self, r: &[f64], bland: bool) -> Option<usize> {
        if bland {
            (0..self.ncols).find(|&j| self.allowed[j] && r[j] < -EPS)
        } else {
            let mut best = None;
            let mut best_rc = -EPS;
            for (j, &rc) in r.iter().enumerate().take(self.ncols) {
                if self.allowed[j] && rc < best_rc {
                    best_rc = rc;
                    best = Some(j);
                }
            }
            best
        }
    }

    fn leaving(&self, pc: usize) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.rows.len() {
            let a = self.rows[i][pc];
            if a > EPS {
                let ratio = self.rhs[i] / a;
                best = match best {
                    None => Some((i, ratio)),
                    Some((_, br)) if ratio < br - EPS => Some((i, ratio)),
                    // Near-tie: prefer the smaller basis index (a simple
                    // anti-cycling heuristic that pairs with Bland's rule).
                    Some((bi, br)) if ratio < br + EPS && self.basis[i] < self.basis[bi] => {
                        Some((i, br.min(ratio)))
                    }
                    other => other,
                };
            }
        }
        best.map(|(i, _)| i)
    }

    fn pivot(&mut self, pr: usize, pc: usize, r: &mut [f64], neg_obj: &mut f64) {
        let piv = self.rows[pr][pc];
        debug_assert!(piv.abs() > EPS, "pivot on a near-zero element");
        let inv = 1.0 / piv;
        for v in self.rows[pr].iter_mut() {
            *v *= inv;
        }
        self.rhs[pr] *= inv;
        // Re-normalize the pivot column entry to exactly 1.
        self.rows[pr][pc] = 1.0;

        let pivot_row = self.rows[pr].clone();
        let pivot_rhs = self.rhs[pr];
        for i in 0..self.rows.len() {
            if i == pr {
                continue;
            }
            let f = self.rows[i][pc];
            if f.abs() > EPS {
                for (xj, &pj) in self.rows[i].iter_mut().zip(&pivot_row) {
                    *xj -= f * pj;
                }
                self.rows[i][pc] = 0.0;
                self.rhs[i] -= f * pivot_rhs;
                if self.rhs[i].abs() < EPS {
                    self.rhs[i] = 0.0;
                }
            } else {
                self.rows[i][pc] = 0.0;
            }
        }
        let f = r[pc];
        if f.abs() > EPS {
            for (rj, &pj) in r.iter_mut().zip(&pivot_row) {
                *rj -= f * pj;
            }
            *neg_obj -= f * pivot_rhs;
        }
        r[pc] = 0.0;
        self.basis[pr] = pc;
    }

    /// After phase 1, pivots artificial variables out of the basis where
    /// possible and drops redundant rows where not.
    fn evict_basic_artificials(&mut self, art_set: &[bool], r: &mut [f64], neg_obj: &mut f64) {
        let mut i = 0;
        while i < self.rows.len() {
            if art_set[self.basis[i]] {
                // Basic artificial at (numerically) zero level.
                let pc = (0..self.ncols)
                    .find(|&j| !art_set[j] && self.allowed[j] && self.rows[i][j].abs() > 1e-7);
                match pc {
                    Some(pc) => {
                        self.pivot(i, pc, r, neg_obj);
                        i += 1;
                    }
                    None => {
                        // Row is redundant in the original columns: drop it.
                        self.rows.swap_remove(i);
                        self.rhs.swap_remove(i);
                        self.basis.swap_remove(i);
                    }
                }
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Model};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn solves_textbook_le_lp() {
        // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (Hillier).
        // As minimization: min -3x - 5y, optimum -36 at (2, 6).
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, f64::INFINITY, -3.0).unwrap();
        let y = m.add_var("y", 0.0, f64::INFINITY, -5.0).unwrap();
        m.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 4.0)
            .unwrap();
        m.add_constraint(vec![(y, 2.0)], ConstraintOp::Le, 12.0)
            .unwrap();
        m.add_constraint(vec![(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0)
            .unwrap();
        let s = solve_lp(&m).unwrap();
        assert!(close(s.objective, -36.0), "objective {}", s.objective);
        assert!(close(s.x[0], 2.0) && close(s.x[1], 6.0), "{:?}", s.x);
    }

    #[test]
    fn solves_ge_lp_with_phase1() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 (via bounds).
        let mut m = Model::new();
        let x = m.add_var("x", 2.0, f64::INFINITY, 2.0).unwrap();
        let y = m.add_var("y", 3.0, f64::INFINITY, 3.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 10.0)
            .unwrap();
        let s = solve_lp(&m).unwrap();
        // Cheapest way to reach 10 is all-x above the y floor: x=7, y=3.
        assert!(
            close(s.objective, 2.0 * 7.0 + 3.0 * 3.0),
            "objective {}",
            s.objective
        );
        assert!(close(s.x[0], 7.0) && close(s.x[1], 3.0));
    }

    #[test]
    fn solves_equality_lp() {
        // min x + 2y s.t. x + y == 5, x <= 3.
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 3.0, 1.0).unwrap();
        let y = m.add_var("y", 0.0, f64::INFINITY, 2.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 5.0)
            .unwrap();
        let s = solve_lp(&m).unwrap();
        assert!(close(s.objective, 3.0 + 2.0 * 2.0));
        assert!(close(s.x[0], 3.0) && close(s.x[1], 2.0));
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0, 1.0).unwrap();
        m.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 2.0)
            .unwrap();
        assert_eq!(solve_lp(&m), Err(LpError::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, f64::INFINITY, -1.0).unwrap();
        m.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 1.0)
            .unwrap();
        assert_eq!(solve_lp(&m), Err(LpError::Unbounded));
    }

    #[test]
    fn handles_negative_rhs_by_flipping() {
        // x - y <= -2 with x,y in [0,10]: i.e. y >= x + 2.
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 10.0, -1.0).unwrap(); // maximize x
        let y = m.add_var("y", 0.0, 10.0, 0.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, -1.0)], ConstraintOp::Le, -2.0)
            .unwrap();
        let s = solve_lp(&m).unwrap();
        assert!(
            close(s.x[0], 8.0),
            "x should reach 8 (y=10), got {}",
            s.x[0]
        );
    }

    #[test]
    fn fixed_variable_via_equal_bounds() {
        let mut m = Model::new();
        let x = m.add_var("x", 2.5, 2.5, 4.0).unwrap();
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 4.0)
            .unwrap();
        let s = solve_lp(&m).unwrap();
        assert!(close(s.x[0], 2.5));
        assert!(close(s.x[1], 1.5));
        assert!(close(s.objective, 10.0 + 1.5));
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate example — multiple bases at the same vertex.
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, f64::INFINITY, -0.75).unwrap();
        let y = m.add_var("y", 0.0, f64::INFINITY, 150.0).unwrap();
        let z = m.add_var("z", 0.0, f64::INFINITY, -0.02).unwrap();
        let w = m.add_var("w", 0.0, f64::INFINITY, 6.0).unwrap();
        m.add_constraint(
            vec![(x, 0.25), (y, -60.0), (z, -0.04), (w, 9.0)],
            ConstraintOp::Le,
            0.0,
        )
        .unwrap();
        m.add_constraint(
            vec![(x, 0.5), (y, -90.0), (z, -0.02), (w, 3.0)],
            ConstraintOp::Le,
            0.0,
        )
        .unwrap();
        m.add_constraint(vec![(z, 1.0)], ConstraintOp::Le, 1.0)
            .unwrap();
        let s = solve_lp(&m).unwrap();
        // Known optimum of the Beale cycling example: -0.05 at z = 1.
        assert!(close(s.objective, -0.05), "objective {}", s.objective);
    }

    #[test]
    fn duals_match_known_values() {
        // min 2x + 3y s.t. x + y >= 4 (dual 2), x - y <= 2.
        // Optimum at x=4,y=0? Check: x+y>=4, x-y<=2 -> x=3,y=1 satisfies
        // x-y=2 (binding). obj=9. Perturb rhs of >=: 4+e needs split
        // between x and y keeping x-y<=2: x=3+e/2,y=1+e/2, obj increase
        // 2.5e -> dual 2.5. Perturb <= rhs: 2+e -> x=3+e/2, y=1-e/2,
        // obj change e*(2-3)/2 = -0.5e -> dual -0.5.
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, f64::INFINITY, 2.0).unwrap();
        let y = m.add_var("y", 0.0, f64::INFINITY, 3.0).unwrap();
        let c1 = m
            .add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 4.0)
            .unwrap();
        let c2 = m
            .add_constraint(vec![(x, 1.0), (y, -1.0)], ConstraintOp::Le, 2.0)
            .unwrap();
        let s = solve_lp(&m).unwrap();
        assert!(close(s.objective, 9.0), "objective {}", s.objective);
        assert!(
            close(s.duals[c1.index()], 2.5),
            "dual1 {}",
            s.duals[c1.index()]
        );
        assert!(
            close(s.duals[c2.index()], -0.5),
            "dual2 {}",
            s.duals[c2.index()]
        );
        // Strong duality for this model (no finite var upper bounds):
        // y'b == c'x.
        let dual_obj = s.duals[0] * 4.0 + s.duals[1] * 2.0;
        assert!(close(dual_obj, s.objective));
    }

    #[test]
    fn redundant_equalities_are_dropped() {
        // Two identical equality rows: one becomes redundant in phase 1.
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0).unwrap();
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 3.0)
            .unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 3.0)
            .unwrap();
        let s = solve_lp(&m).unwrap();
        assert!(close(s.objective, 3.0));
    }

    #[test]
    fn solution_is_feasible_for_model() {
        let mut m = Model::new();
        let a = m.add_var("a", 0.0, 1.0, 5.0).unwrap();
        let b = m.add_var("b", 0.0, 1.0, 4.0).unwrap();
        let c = m.add_var("c", 0.0, 1.0, 3.0).unwrap();
        m.add_constraint(vec![(a, 2.0), (b, 3.0), (c, 1.0)], ConstraintOp::Ge, 3.0)
            .unwrap();
        m.add_constraint(vec![(a, 1.0), (b, 1.0), (c, 1.0)], ConstraintOp::Le, 2.0)
            .unwrap();
        let s = solve_lp(&m).unwrap();
        assert!(m.is_feasible(&s.x, 1e-6), "{:?}", s.x);
    }
}
