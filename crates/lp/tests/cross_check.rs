//! Cross-checks between the three solvers in `edge-lp`.
//!
//! The covering DP, the branch-and-bound ILP solver, and the simplex LP
//! relaxation are independent implementations of overlapping problems, so
//! we can use each to validate the others on randomized instances.

use edge_lp::{solve_ilp, solve_lp, ConstraintOp, CoverOption, GroupCover, IlpOptions, Model};
use proptest::prelude::*;

/// Builds the ILP formulation of a [`GroupCover`] instance:
/// min Σ cost·x, Σ amount·x >= demand, Σ_j x_gj <= 1 per group.
fn cover_to_ilp(inst: &GroupCover) -> Model {
    let mut m = Model::new();
    let mut cover_terms = Vec::new();
    for (g, group) in inst.groups().iter().enumerate() {
        let mut group_terms = Vec::new();
        for (j, opt) in group.iter().enumerate() {
            let v = m.add_binary(&format!("x_{g}_{j}"), opt.cost).unwrap();
            cover_terms.push((v, opt.amount as f64));
            group_terms.push((v, 1.0));
        }
        if !group_terms.is_empty() {
            m.add_constraint(group_terms, ConstraintOp::Le, 1.0)
                .unwrap();
        }
    }
    m.add_constraint(cover_terms, ConstraintOp::Ge, inst.demand() as f64)
        .unwrap();
    m
}

fn arb_cover() -> impl Strategy<Value = GroupCover> {
    (
        0u64..15,
        proptest::collection::vec(proptest::collection::vec((1u32..25, 1u64..6), 1..4), 1..6),
    )
        .prop_map(|(demand, groups)| {
            let groups = groups
                .into_iter()
                .map(|g| {
                    g.into_iter()
                        .map(|(c, a)| CoverOption::new(c as f64, a))
                        .collect()
                })
                .collect();
            GroupCover::new(demand, groups)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The DP and branch-and-bound must agree exactly on optimal cost.
    #[test]
    fn dp_and_branch_and_bound_agree(inst in arb_cover()) {
        let ilp = cover_to_ilp(&inst);
        let dp = inst.solve_exact();
        let bb = solve_ilp(&ilp, &IlpOptions::default());
        match (dp, bb) {
            (Some(dp_sol), Ok(bb_sol)) => {
                prop_assert!(bb_sol.proven_optimal);
                prop_assert!((dp_sol.cost - bb_sol.objective).abs() < 1e-6,
                    "dp {} vs b&b {}", dp_sol.cost, bb_sol.objective);
            }
            (None, Err(edge_lp::LpError::Infeasible)) => {}
            (dp, bb) => prop_assert!(false, "disagreement: dp={dp:?} bb={bb:?}"),
        }
    }

    /// Weak duality: the LP relaxation never exceeds the integer optimum,
    /// and the fractional greedy bound never exceeds the LP value by more
    /// than tolerance (both are relaxations of the same covering).
    #[test]
    fn lp_relaxation_bounds_integer_optimum(inst in arb_cover()) {
        let ilp = cover_to_ilp(&inst);
        if let Some(dp_sol) = inst.solve_exact() {
            let lp = solve_lp(&ilp).expect("relaxation of a feasible ILP is feasible");
            prop_assert!(lp.objective <= dp_sol.cost + 1e-6,
                "LP {} must lower-bound ILP {}", lp.objective, dp_sol.cost);
            prop_assert!(ilp.is_feasible(&lp.x, 1e-6));
        }
    }

    /// Simplex solutions are feasible and no random feasible 0/1 point
    /// beats them.
    #[test]
    fn simplex_beats_random_feasible_points(inst in arb_cover(), seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let ilp = cover_to_ilp(&inst);
        let Ok(lp) = solve_lp(&ilp) else { return Ok(()); };
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..20 {
            let x: Vec<f64> = (0..ilp.num_vars()).map(|_| f64::from(rng.gen_range(0..=1))).collect();
            if ilp.is_feasible(&x, 1e-9) {
                prop_assert!(lp.objective <= ilp.objective_value(&x) + 1e-6);
            }
        }
    }
}

#[test]
fn larger_cover_instance_solves_quickly() {
    // 40 sellers × 2 bids, demand 120 — the Fig 3(b) upper scale.
    let groups: Vec<Vec<CoverOption>> = (0..40)
        .map(|g| {
            vec![
                CoverOption::new(10.0 + (g % 26) as f64, 1 + (g % 5) as u64),
                CoverOption::new(12.0 + ((g * 7) % 24) as f64, 2 + (g % 4) as u64),
            ]
        })
        .collect();
    let inst = GroupCover::new(80, groups);
    let sol = inst.solve_exact().expect("feasible");
    assert!(sol.cost > 0.0);
    assert!(inst.fractional_lower_bound() <= sol.cost + 1e-9);
}
