//! Randomized stress tests of the simplex on general (non-covering) LPs.

use edge_lp::{solve_lp, ConstraintOp, LpError, Model};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Random LPs over a bounded box are always either feasible-and-bounded
/// or infeasible — never unbounded — so the solver must return one of
/// those two answers and, when optimal, a feasible point no worse than
/// any sampled feasible point.
fn random_model(seed: u64, n: usize, m: usize) -> Model {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut model = Model::new();
    let vars: Vec<_> = (0..n)
        .map(|i| {
            model
                .add_var(
                    &format!("x{i}"),
                    0.0,
                    rng.gen_range(1.0..10.0),
                    rng.gen_range(-5.0..5.0),
                )
                .unwrap()
        })
        .collect();
    for _ in 0..m {
        let mut terms = Vec::new();
        for &v in &vars {
            if rng.gen_bool(0.7) {
                terms.push((v, rng.gen_range(-3.0..3.0)));
            }
        }
        if terms.is_empty() {
            continue;
        }
        let op = match rng.gen_range(0..3) {
            0 => ConstraintOp::Le,
            1 => ConstraintOp::Ge,
            _ => ConstraintOp::Eq,
        };
        model
            .add_constraint(terms, op, rng.gen_range(-5.0..10.0))
            .unwrap();
    }
    model
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn simplex_is_sound_on_random_boxed_lps(seed in 0u64..10_000, n in 1usize..6, m in 0usize..6) {
        let model = random_model(seed, n, m);
        match solve_lp(&model) {
            Ok(sol) => {
                // Feasible and no sampled feasible point beats it.
                prop_assert!(model.is_feasible(&sol.x, 1e-5),
                    "claimed optimum infeasible: {:?}", sol.x);
                let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xABCD);
                for _ in 0..50 {
                    let x: Vec<f64> = (0..model.num_vars())
                        .map(|i| {
                            let (lo, hi) = model.bounds(model.var(i).unwrap()).unwrap();
                            rng.gen_range(lo..=hi)
                        })
                        .collect();
                    if model.is_feasible(&x, 1e-9) {
                        prop_assert!(sol.objective <= model.objective_value(&x) + 1e-5,
                            "sampled point beats 'optimum': {} < {}",
                            model.objective_value(&x), sol.objective);
                    }
                }
            }
            Err(LpError::Infeasible) => {
                // No sampled point may be feasible... sampling cannot
                // prove infeasibility, but a feasible sample would be a
                // hard bug.
                let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xBEEF);
                for _ in 0..200 {
                    let x: Vec<f64> = (0..model.num_vars())
                        .map(|i| {
                            let (lo, hi) = model.bounds(model.var(i).unwrap()).unwrap();
                            rng.gen_range(lo..=hi)
                        })
                        .collect();
                    prop_assert!(!model.is_feasible(&x, 1e-7),
                        "solver said infeasible but {x:?} is feasible");
                }
            }
            Err(LpError::Unbounded) => {
                prop_assert!(false, "boxed LP cannot be unbounded");
            }
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }
}
