//! `edge-net` — a deterministic in-process network substrate.
//!
//! Multi-platform federation experiments (DESIGN.md §14) need a network
//! that misbehaves *reproducibly*: the same seed must produce the same
//! drops, latencies, duplications, and partitions on every run, on every
//! machine, at any pricing-thread count. This crate provides that
//! substrate without touching a socket:
//!
//! * a **logical clock** — time is an integer tick advanced only by
//!   [`Network::tick`], so "latency" and "timeout" are exact counts,
//!   never wall-clock races;
//! * **seeded link models** ([`link::LinkModel`]) — per-message drop /
//!   latency / duplication / reorder draws generated with
//!   common-random-numbers (a fixed draw tuple per message identity, the
//!   same discipline as `edge_auction::recovery::FaultPlan`), so raising
//!   one fault probability *nests*: every message lost at `p = 0.1` is
//!   still lost at `p = 0.3`, and surviving messages keep identical
//!   latencies;
//! * **scriptable partitions** ([`plan::PartitionWindow`]) — tick
//!   intervals during which one node is isolated from every peer, with
//!   an explicit heal time, checked at both send and delivery time so a
//!   message can be stranded by a partition that starts while it is in
//!   flight;
//! * a **digest-chained event tape** ([`substrate::NetEvent`]) — every
//!   send, drop, duplication, and delivery folds into an FNV-1a chain
//!   ([`Network::digest_hex`]), so two runs agree iff their entire
//!   network histories agree byte-for-byte;
//! * **live metric families** ([`live`]) — `edge_net_messages_*`
//!   counters (sent / delivered / dropped by reason / duplicated /
//!   reordered), the `edge_net_logical_clock` and
//!   `edge_net_messages_in_flight` gauges, and per-link
//!   `edge_net_latency_ticks{link="a->b"}` summaries, all read-only
//!   observers of the deterministic tape (scraping never perturbs a
//!   run).
//!
//! # Examples
//!
//! ```
//! use edge_net::{Network, NetFaultPlan};
//!
//! let mut net: Network<String> = Network::new(2, NetFaultPlan::ideal(7)).unwrap();
//! net.send(0, 1, "hello".to_owned());
//! let delivered = net.tick(); // ideal link: latency is exactly one tick
//! assert_eq!(delivered.len(), 1);
//! assert_eq!(delivered[0].payload, "hello");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod link;
pub mod live;
pub mod plan;
pub mod substrate;

pub use link::LinkModel;
pub use live::preregister;
pub use plan::{NetConfigError, NetFaultPlan, PartitionWindow};
pub use substrate::{Delivery, DropReason, NetEvent, NetStats, Network};
