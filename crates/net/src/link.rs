//! Per-link fault models with common-random-number draws.
//!
//! A [`LinkModel`] decides the fate of one message — dropped, delayed,
//! duplicated, pushed behind later traffic — from a dedicated RNG stream
//! derived from the message's identity `(seed, from, to, nth-on-link)`.
//! Every fate evaluation makes the **same number of draws in the same
//! order** regardless of which faults fire, so two plans sharing a seed
//! but differing in probabilities see *nested* fault sets: the
//! common-random-number discipline `edge_auction::recovery::FaultPlan`
//! established for seller faults, applied to the wire.

use edge_common::rng::DeterministicRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The stochastic behaviour of every link in a [`crate::Network`].
///
/// Latencies are logical ticks and must be at least one (a message can
/// never be delivered on the tick it was sent — the substrate's "no
/// instantaneous feedback" rule). Probabilities must be finite and in
/// `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Minimum delivery latency in ticks (≥ 1).
    pub latency_min: u64,
    /// Maximum delivery latency in ticks (≥ `latency_min`).
    pub latency_max: u64,
    /// Probability a message is silently lost at send time.
    pub drop_probability: f64,
    /// Probability a surviving message is delivered twice.
    pub duplicate_probability: f64,
    /// Probability a surviving message is pushed behind later traffic.
    pub reorder_probability: f64,
    /// Largest extra delay (ticks) a reordered message can incur; a
    /// reorder always adds at least one tick even when this is zero.
    pub reorder_max_extra: u64,
}

impl Default for LinkModel {
    /// The ideal link: exactly one tick of latency, no faults.
    fn default() -> Self {
        LinkModel {
            latency_min: 1,
            latency_max: 1,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            reorder_probability: 0.0,
            reorder_max_extra: 0,
        }
    }
}

/// What the link decided to do with one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageFate {
    /// Lost at send time; the sender gets no feedback.
    Dropped,
    /// Delivered after `delay` ticks; `duplicate_delay` carries the
    /// second copy's (strictly larger) delay when the message was
    /// duplicated.
    Delivered {
        /// Ticks until the primary copy arrives (≥ 1).
        delay: u64,
        /// Ticks until the duplicate copy arrives, if any.
        duplicate_delay: Option<u64>,
        /// True when the reorder model pushed this message behind later
        /// traffic (its extra delay is already folded into `delay`).
        reordered: bool,
    },
}

impl LinkModel {
    /// Checks ranges; called by [`crate::NetFaultPlan::validate`].
    pub(crate) fn validate(&self) -> Result<(), String> {
        if self.latency_min == 0 {
            return Err("latency_min must be at least 1 tick".to_owned());
        }
        if self.latency_min > self.latency_max {
            return Err(format!(
                "latency_min {} exceeds latency_max {}",
                self.latency_min, self.latency_max
            ));
        }
        for (name, p) in [
            ("drop_probability", self.drop_probability),
            ("duplicate_probability", self.duplicate_probability),
            ("reorder_probability", self.reorder_probability),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} {p} outside [0, 1]"));
            }
        }
        Ok(())
    }

    /// Decides one message's fate from its dedicated RNG stream.
    ///
    /// Exactly six uniform draws are consumed — `(drop, latency,
    /// reorder, reorder-extra, duplicate, duplicate-extra)` — in that
    /// order, *unconditionally*. Because the draw count never depends
    /// on which indicators fire, plans sharing a seed but differing in
    /// probabilities nest: see the `crn_nesting` tests.
    pub fn fate(&self, rng: &mut DeterministicRng) -> MessageFate {
        let u_drop: f64 = rng.gen();
        let u_latency: f64 = rng.gen();
        let u_reorder: f64 = rng.gen();
        let u_reorder_extra: f64 = rng.gen();
        let u_duplicate: f64 = rng.gen();
        let u_duplicate_extra: f64 = rng.gen();

        if u_drop < self.drop_probability {
            return MessageFate::Dropped;
        }
        let span = self.latency_max - self.latency_min + 1;
        let mut delay = self.latency_min + scale(u_latency, span);
        let reordered = u_reorder < self.reorder_probability;
        if reordered {
            delay += 1 + scale(u_reorder_extra, self.reorder_max_extra.max(1));
        }
        let duplicate_delay = (u_duplicate < self.duplicate_probability)
            .then(|| delay + 1 + scale(u_duplicate_extra, span));
        MessageFate::Delivered {
            delay,
            duplicate_delay,
            reordered,
        }
    }
}

/// Maps a uniform draw to `0..n` (`0` when `n == 0`).
fn scale(u: f64, n: u64) -> u64 {
    ((u * n as f64) as u64).min(n.saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_common::rng::derive_rng;

    fn fate_with(model: &LinkModel, seed: u64) -> MessageFate {
        model.fate(&mut derive_rng(seed, "link-test"))
    }

    #[test]
    fn ideal_link_is_one_tick_no_faults() {
        for seed in 0..50 {
            assert_eq!(
                fate_with(&LinkModel::default(), seed),
                MessageFate::Delivered {
                    delay: 1,
                    duplicate_delay: None,
                    reordered: false,
                }
            );
        }
    }

    #[test]
    fn drops_nest_as_probability_rises() {
        let low = LinkModel {
            drop_probability: 0.2,
            ..LinkModel::default()
        };
        let high = LinkModel {
            drop_probability: 0.6,
            ..LinkModel::default()
        };
        let mut low_drops = 0;
        for seed in 0..500 {
            let a = fate_with(&low, seed);
            let b = fate_with(&high, seed);
            if a == MessageFate::Dropped {
                low_drops += 1;
                assert_eq!(b, MessageFate::Dropped, "seed {seed}: drop did not nest");
            }
        }
        assert!(low_drops > 50, "drop model never fired");
    }

    #[test]
    fn latency_survives_probability_changes() {
        // Adding duplication must not perturb the latency of messages
        // that are delivered either way (fixed draw order).
        let plain = LinkModel {
            latency_min: 2,
            latency_max: 9,
            ..LinkModel::default()
        };
        let noisy = LinkModel {
            duplicate_probability: 0.5,
            ..plain
        };
        for seed in 0..200 {
            let (a, b) = (fate_with(&plain, seed), fate_with(&noisy, seed));
            if let (
                MessageFate::Delivered { delay: d1, .. },
                MessageFate::Delivered { delay: d2, .. },
            ) = (a, b)
            {
                assert_eq!(d1, d2, "seed {seed}: latency perturbed by duplication knob");
                assert!((2..=9).contains(&d1));
            }
        }
    }

    #[test]
    fn reorder_flag_marks_delayed_messages() {
        let model = LinkModel {
            reorder_probability: 1.0,
            reorder_max_extra: 2,
            ..LinkModel::default()
        };
        for seed in 0..50 {
            match fate_with(&model, seed) {
                MessageFate::Delivered {
                    delay, reordered, ..
                } => {
                    assert!(reordered);
                    assert!(delay >= 2, "a reorder always adds at least one tick");
                }
                other => panic!("expected delivery, got {other:?}"),
            }
        }
    }

    #[test]
    fn duplicate_copy_arrives_strictly_later() {
        let model = LinkModel {
            duplicate_probability: 1.0,
            latency_min: 1,
            latency_max: 4,
            ..LinkModel::default()
        };
        for seed in 0..100 {
            match fate_with(&model, seed) {
                MessageFate::Delivered {
                    delay,
                    duplicate_delay: Some(extra),
                    ..
                } => assert!(extra > delay),
                other => panic!("expected duplicated delivery, got {other:?}"),
            }
        }
    }
}
