//! Live `edge_net_*` metric families.
//!
//! Mirrors the `edge_auction_*` / `edge_service_*` instrumentation
//! idiom: handles are looked up once per [`crate::Network`] (one
//! registry lock per family) and bumped with relaxed atomics on the
//! substrate's hot paths. Recording only ever *reads* network state, so
//! scraping can never perturb a deterministic tape.

use edge_telemetry::registry::global;
use edge_telemetry::{Counter, Gauge, Summary};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Help string shared by every `edge_net_latency_ticks` series.
const LATENCY_HELP: &str =
    "Delivery latency in logical ticks, send to delivery (duplicates included)";

/// Registry handles for the network substrate families.
#[derive(Debug)]
pub(crate) struct NetLive {
    pub(crate) sent: Arc<Counter>,
    pub(crate) delivered: Arc<Counter>,
    pub(crate) dropped_loss: Arc<Counter>,
    pub(crate) dropped_partition: Arc<Counter>,
    pub(crate) duplicated: Arc<Counter>,
    pub(crate) reordered: Arc<Counter>,
    pub(crate) in_flight: Arc<Gauge>,
    pub(crate) clock: Arc<Gauge>,
    /// Unlabeled aggregate latency series, registered up front so the
    /// family shows in `/metrics` before the first delivery.
    latency_all: Arc<Summary>,
    /// Per-link latency series, registered lazily on each link's first
    /// delivery (labels are `link="from->to"`).
    latency_links: BTreeMap<(usize, usize), Arc<Summary>>,
}

impl NetLive {
    /// Looks up (registering on first use) every net family.
    pub(crate) fn handle() -> Self {
        let r = global();
        NetLive {
            sent: r.counter(
                "edge_net_messages_sent_total",
                "Messages handed to the deterministic network substrate",
                &[],
            ),
            delivered: r.counter(
                "edge_net_messages_delivered_total",
                "Messages delivered by the substrate (duplicates included)",
                &[],
            ),
            dropped_loss: r.counter(
                "edge_net_messages_dropped_total",
                "Messages discarded by the substrate",
                &[("reason", "loss")],
            ),
            dropped_partition: r.counter(
                "edge_net_messages_dropped_total",
                "Messages discarded by the substrate",
                &[("reason", "partition")],
            ),
            duplicated: r.counter(
                "edge_net_messages_duplicated_total",
                "Extra copies scheduled by the duplication model",
                &[],
            ),
            reordered: r.counter(
                "edge_net_messages_reordered_total",
                "Messages pushed behind later traffic by the reorder model",
                &[],
            ),
            in_flight: r.gauge(
                "edge_net_inflight_messages",
                "Messages currently queued for delivery",
                &[],
            ),
            clock: r.gauge(
                "edge_net_logical_clock",
                "Current logical tick of the most recently advanced network",
                &[],
            ),
            latency_all: r.summary("edge_net_latency_ticks", LATENCY_HELP, &[]),
            latency_links: BTreeMap::new(),
        }
    }

    /// Records one delivery's latency on the aggregate series and the
    /// delivering link's `link="from->to"` series.
    pub(crate) fn observe_latency(&mut self, from: usize, to: usize, ticks: u64) {
        self.latency_all.observe(ticks);
        self.latency_links
            .entry((from, to))
            .or_insert_with(|| {
                let link = format!("{from}->{to}");
                global().summary("edge_net_latency_ticks", LATENCY_HELP, &[("link", &link)])
            })
            .observe(ticks);
    }
}

/// Registers every `edge_net_*` family up front so `/metrics` shows the
/// complete catalogue (at zero) before the first federation runs.
pub fn preregister() {
    let _ = NetLive::handle();
}
