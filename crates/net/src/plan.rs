//! Net-fault plans: seed, link model, and scripted partitions.
//!
//! A [`NetFaultPlan`] is the *entire* stochastic configuration of a
//! [`crate::Network`]. It serializes into log headers so a federation
//! run can be replayed byte-identically, and it is the unit the CLI's
//! `--net-faults plan.toml` parses into.

use crate::link::LinkModel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A scripted partition: node `isolated` can neither send to nor
/// receive from any peer while `from <= tick < until` (`until` is the
/// heal time). Partitions are checked at send *and* delivery time, so
/// a window that opens mid-flight strands the messages inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// First tick of the partition (inclusive).
    pub from: u64,
    /// Heal tick (exclusive) — the first tick traffic flows again.
    pub until: u64,
    /// The node cut off from every peer.
    pub isolated: usize,
}

/// The full deterministic fault configuration for one network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetFaultPlan {
    /// Root seed for every per-message draw stream.
    pub seed: u64,
    /// The link model shared by every ordered pair of nodes.
    pub link: LinkModel,
    /// Scripted partition windows, applied independently.
    pub partitions: Vec<PartitionWindow>,
}

impl NetFaultPlan {
    /// The ideal network: one-tick links, no faults, no partitions.
    pub fn ideal(seed: u64) -> Self {
        NetFaultPlan {
            seed,
            link: LinkModel::default(),
            partitions: Vec::new(),
        }
    }

    /// True when the plan injects nothing (drops, duplication, reorder,
    /// partitions) and latency is the fixed one-tick minimum.
    pub fn is_ideal(&self) -> bool {
        self.link == LinkModel::default() && self.partitions.is_empty()
    }

    /// Checks the link model and every partition window.
    ///
    /// # Errors
    ///
    /// [`NetConfigError`] naming the offending field.
    pub fn validate(&self, nodes: usize) -> Result<(), NetConfigError> {
        self.link.validate().map_err(NetConfigError::Link)?;
        for (i, w) in self.partitions.iter().enumerate() {
            if w.from >= w.until {
                return Err(NetConfigError::Partition {
                    index: i,
                    message: format!("empty window: from {} >= until {}", w.from, w.until),
                });
            }
            if w.isolated >= nodes {
                return Err(NetConfigError::Partition {
                    index: i,
                    message: format!("isolated node {} out of range (< {nodes})", w.isolated),
                });
            }
        }
        Ok(())
    }

    /// True when `a` and `b` cannot exchange messages at `tick`.
    pub fn is_partitioned(&self, a: usize, b: usize, tick: u64) -> bool {
        a != b
            && self
                .partitions
                .iter()
                .any(|w| (w.isolated == a || w.isolated == b) && w.from <= tick && tick < w.until)
    }
}

/// A rejected net-fault plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetConfigError {
    /// The link model failed validation.
    Link(String),
    /// A partition window failed validation.
    Partition {
        /// Index into [`NetFaultPlan::partitions`].
        index: usize,
        /// What was wrong.
        message: String,
    },
    /// The network needs at least two nodes to be interesting — but one
    /// is allowed; zero is not.
    NoNodes,
}

impl fmt::Display for NetConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetConfigError::Link(message) => write!(f, "invalid link model: {message}"),
            NetConfigError::Partition { index, message } => {
                write!(f, "invalid partition window #{index}: {message}")
            }
            NetConfigError::NoNodes => write!(f, "network needs at least one node"),
        }
    }
}

impl std::error::Error for NetConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_isolates_both_directions_then_heals() {
        let mut plan = NetFaultPlan::ideal(1);
        plan.partitions.push(PartitionWindow {
            from: 5,
            until: 8,
            isolated: 1,
        });
        assert!(!plan.is_partitioned(0, 1, 4));
        assert!(plan.is_partitioned(0, 1, 5));
        assert!(plan.is_partitioned(1, 0, 7));
        assert!(!plan.is_partitioned(0, 1, 8), "heal tick reopens the link");
        assert!(!plan.is_partitioned(0, 2, 6), "third parties unaffected");
    }

    #[test]
    fn validate_rejects_bad_windows_and_links() {
        let mut plan = NetFaultPlan::ideal(1);
        plan.partitions.push(PartitionWindow {
            from: 8,
            until: 8,
            isolated: 0,
        });
        assert!(matches!(
            plan.validate(3),
            Err(NetConfigError::Partition { index: 0, .. })
        ));
        plan.partitions[0].until = 9;
        plan.partitions[0].isolated = 3;
        assert!(plan.validate(3).is_err());
        plan.partitions[0].isolated = 2;
        assert!(plan.validate(3).is_ok());
        plan.link.drop_probability = 1.5;
        assert!(matches!(plan.validate(3), Err(NetConfigError::Link(_))));
    }

    #[test]
    fn plan_round_trips_through_json() {
        let mut plan = NetFaultPlan::ideal(42);
        plan.link.drop_probability = 0.25;
        plan.partitions.push(PartitionWindow {
            from: 1,
            until: 10,
            isolated: 2,
        });
        let json = serde_json::to_string(&plan).unwrap();
        let back: NetFaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
