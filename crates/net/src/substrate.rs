//! The deterministic network: logical clock, in-flight queue, event tape.
//!
//! [`Network`] is single-threaded and purely functional in (plan,
//! send-sequence): every message's fate comes from a dedicated RNG
//! stream derived from `(plan.seed, from, to, nth-message-on-link)`, so
//! a run is reproduced exactly by re-issuing the same sends in the same
//! order — which the federation driver guarantees by construction.
//!
//! Delivery order is total and deterministic: messages are queued under
//! `(deliver_at, send_seq)` and [`Network::tick`] drains everything due
//! at the new clock value in that order. Partitions are consulted twice
//! per message — at send time and again at delivery time — so a window
//! that opens while a message is in flight strands it (recorded as a
//! partition drop at the delivery tick).

use crate::live::NetLive;
use crate::plan::{NetConfigError, NetFaultPlan};
use edge_common::rng::{derive_rng, fnv1a64};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Domain separator for the network digest chain.
const NET_GENESIS: &str = "edge-net";
/// Tape format version folded into the genesis digest.
const NET_VERSION: u64 = 1;

/// Why a message never arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// The link model lost it at send time.
    Loss,
    /// A partition window blocked it (at send or delivery time).
    Partition,
}

/// One entry on the network's append-only event tape.
///
/// Each event folds into the FNV-1a digest chain the moment it happens,
/// so [`Network::digest_hex`] commits to the complete network history —
/// payloads included (the `Sent` event carries the serialized payload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NetEvent {
    /// A message entered the network.
    Sent {
        /// Clock value at send time.
        tick: u64,
        /// Global send sequence number.
        seq: u64,
        /// Sending node.
        from: usize,
        /// Receiving node.
        to: usize,
        /// The serialized payload (JSON).
        payload: String,
    },
    /// A message was discarded.
    Dropped {
        /// Clock value when the drop was decided.
        tick: u64,
        /// The dropped message's send sequence number.
        seq: u64,
        /// Sending node.
        from: usize,
        /// Receiving node.
        to: usize,
        /// Why it was discarded.
        reason: DropReason,
    },
    /// The link scheduled a second copy of a message.
    Duplicated {
        /// Clock value at send time.
        tick: u64,
        /// The duplicated message's send sequence number.
        seq: u64,
        /// Sending node.
        from: usize,
        /// Receiving node.
        to: usize,
        /// Tick the duplicate copy will arrive (partition permitting).
        deliver_at: u64,
    },
    /// A message reached its destination.
    Delivered {
        /// Clock value at delivery.
        tick: u64,
        /// The delivered message's send sequence number.
        seq: u64,
        /// Sending node.
        from: usize,
        /// Receiving node.
        to: usize,
        /// True for the second copy of a duplicated message.
        duplicate: bool,
    },
}

/// Running totals over the event tape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Messages handed to [`Network::send`].
    pub sent: u64,
    /// Deliveries surfaced by [`Network::tick`] (duplicates included).
    pub delivered: u64,
    /// Messages lost by the link model.
    pub dropped_loss: u64,
    /// Messages blocked by a partition window.
    pub dropped_partition: u64,
    /// Extra copies scheduled by the duplication model.
    pub duplicated: u64,
    /// Messages pushed behind later traffic by the reorder model.
    pub reordered: u64,
}

/// One message surfaced by [`Network::tick`].
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery<M> {
    /// Sending node.
    pub from: usize,
    /// Receiving node.
    pub to: usize,
    /// The original send's sequence number.
    pub seq: u64,
    /// True for the second copy of a duplicated message.
    pub duplicate: bool,
    /// The payload.
    pub payload: M,
}

/// A queued message awaiting its delivery tick.
#[derive(Debug, Clone)]
struct InFlight<M> {
    from: usize,
    to: usize,
    seq: u64,
    duplicate: bool,
    /// Clock value when the original send happened, for the delivery
    /// latency summaries.
    sent_tick: u64,
    payload: M,
}

/// The deterministic in-process network. See the module docs.
#[derive(Debug)]
pub struct Network<M> {
    plan: NetFaultPlan,
    nodes: usize,
    clock: u64,
    next_seq: u64,
    /// Per ordered link: how many messages have been sent on it. The
    /// count names each message's RNG stream, so fates depend only on
    /// the message's identity, never on global interleaving.
    link_sends: BTreeMap<(usize, usize), u64>,
    /// In-flight messages keyed by `(deliver_at, queue_seq)`. The queue
    /// sequence (distinct from the send sequence, so a duplicate copy
    /// gets its own slot) totally orders same-tick deliveries.
    queue: BTreeMap<(u64, u64), InFlight<M>>,
    next_queue_seq: u64,
    digest: u64,
    events_folded: u64,
    pending_events: Vec<NetEvent>,
    stats: NetStats,
    live: NetLive,
}

impl<M: Serialize + Clone> Network<M> {
    /// Builds a network of `nodes` platforms under `plan`.
    ///
    /// # Errors
    ///
    /// [`NetConfigError`] when the plan fails validation or `nodes` is
    /// zero.
    pub fn new(nodes: usize, plan: NetFaultPlan) -> Result<Self, NetConfigError> {
        if nodes == 0 {
            return Err(NetConfigError::NoNodes);
        }
        plan.validate(nodes)?;
        let header = serde_json::to_string(&plan).expect("plan serialization is infallible");
        let digest = fnv1a64(format!("{NET_GENESIS}:v{NET_VERSION}:{header}").as_bytes());
        let live = NetLive::handle();
        live.clock.set(0.0);
        Ok(Network {
            plan,
            nodes,
            clock: 0,
            next_seq: 0,
            link_sends: BTreeMap::new(),
            queue: BTreeMap::new(),
            next_queue_seq: 0,
            digest,
            events_folded: 0,
            pending_events: Vec::new(),
            stats: NetStats::default(),
            live,
        })
    }

    /// The current logical time.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Number of platforms.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The plan this network runs under.
    pub fn plan(&self) -> &NetFaultPlan {
        &self.plan
    }

    /// True when nothing is in flight.
    pub fn idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Running totals.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The event-tape digest chain head (hex, 16 chars).
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest)
    }

    /// Events recorded since the last drain, in occurrence order.
    pub fn drain_events(&mut self) -> Vec<NetEvent> {
        std::mem::take(&mut self.pending_events)
    }

    /// Sends `payload` from `from` to `to`, deciding its fate from the
    /// message's dedicated RNG stream. Returns the send sequence
    /// number. The sender gets no delivery feedback — a dropped message
    /// is indistinguishable from a slow one, exactly as on a real wire.
    ///
    /// # Panics
    ///
    /// Panics when `from == to` or either index is out of range —
    /// both are driver bugs, not runtime conditions.
    pub fn send(&mut self, from: usize, to: usize, payload: M) -> u64 {
        assert!(from < self.nodes && to < self.nodes, "node out of range");
        assert_ne!(from, to, "self-sends are not modeled");
        let seq = self.next_seq;
        self.next_seq += 1;
        let nth = self.link_sends.entry((from, to)).or_insert(0);
        let stream = format!("edge-net-msg:{from}:{to}:{nth}");
        *nth += 1;
        let serialized =
            serde_json::to_string(&payload).expect("payload serialization is infallible");
        self.stats.sent += 1;
        self.live.sent.incr();
        self.record(NetEvent::Sent {
            tick: self.clock,
            seq,
            from,
            to,
            payload: serialized,
        });

        // The fate draw happens unconditionally (CRN discipline): a
        // partitioned send consumes the same six draws as a live one,
        // so healing a partition never perturbs other messages' fates.
        let fate = self
            .plan
            .link
            .fate(&mut derive_rng(self.plan.seed, &stream));
        if self.plan.is_partitioned(from, to, self.clock) {
            self.drop_message(seq, from, to, DropReason::Partition);
            return seq;
        }
        match fate {
            crate::link::MessageFate::Dropped => {
                self.drop_message(seq, from, to, DropReason::Loss);
            }
            crate::link::MessageFate::Delivered {
                delay,
                duplicate_delay,
                reordered,
            } => {
                if reordered {
                    self.stats.reordered += 1;
                    self.live.reordered.incr();
                }
                self.enqueue(from, to, seq, false, self.clock + delay, payload.clone());
                if let Some(extra) = duplicate_delay {
                    let deliver_at = self.clock + extra;
                    self.stats.duplicated += 1;
                    self.live.duplicated.incr();
                    self.record(NetEvent::Duplicated {
                        tick: self.clock,
                        seq,
                        from,
                        to,
                        deliver_at,
                    });
                    self.enqueue(from, to, seq, true, deliver_at, payload);
                }
            }
        }
        seq
    }

    /// Advances the clock one tick and returns everything due, in
    /// `(deliver_at, queue_seq)` order. Messages whose receiver is
    /// partitioned *at delivery time* are dropped here.
    pub fn tick(&mut self) -> Vec<Delivery<M>> {
        self.clock += 1;
        self.live.clock.set(self.clock as f64);
        let mut still_queued = self.queue.split_off(&(self.clock + 1, 0));
        std::mem::swap(&mut self.queue, &mut still_queued);
        let due = still_queued;
        let mut out = Vec::with_capacity(due.len());
        for (_, msg) in due {
            if self.plan.is_partitioned(msg.from, msg.to, self.clock) {
                self.drop_message(msg.seq, msg.from, msg.to, DropReason::Partition);
                continue;
            }
            self.stats.delivered += 1;
            self.live.delivered.incr();
            self.live
                .observe_latency(msg.from, msg.to, self.clock - msg.sent_tick);
            self.record(NetEvent::Delivered {
                tick: self.clock,
                seq: msg.seq,
                from: msg.from,
                to: msg.to,
                duplicate: msg.duplicate,
            });
            out.push(Delivery {
                from: msg.from,
                to: msg.to,
                seq: msg.seq,
                duplicate: msg.duplicate,
                payload: msg.payload,
            });
        }
        self.live.in_flight.set(self.queue.len() as f64);
        out
    }

    fn enqueue(
        &mut self,
        from: usize,
        to: usize,
        seq: u64,
        duplicate: bool,
        deliver_at: u64,
        payload: M,
    ) {
        let queue_seq = self.next_queue_seq;
        self.next_queue_seq += 1;
        self.queue.insert(
            (deliver_at, queue_seq),
            InFlight {
                from,
                to,
                seq,
                duplicate,
                sent_tick: self.clock,
                payload,
            },
        );
        self.live.in_flight.set(self.queue.len() as f64);
    }

    fn drop_message(&mut self, seq: u64, from: usize, to: usize, reason: DropReason) {
        match reason {
            DropReason::Loss => {
                self.stats.dropped_loss += 1;
                self.live.dropped_loss.incr();
            }
            DropReason::Partition => {
                self.stats.dropped_partition += 1;
                self.live.dropped_partition.incr();
            }
        }
        self.record(NetEvent::Dropped {
            tick: self.clock,
            seq,
            from,
            to,
            reason,
        });
    }

    fn record(&mut self, event: NetEvent) {
        let json = serde_json::to_string(&event).expect("event serialization is infallible");
        self.digest =
            fnv1a64(format!("{:016x}:{}:{json}", self.digest, self.events_folded).as_bytes());
        self.events_folded += 1;
        self.pending_events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PartitionWindow;

    fn noisy_plan(seed: u64, drop: f64) -> NetFaultPlan {
        let mut plan = NetFaultPlan::ideal(seed);
        plan.link.latency_min = 1;
        plan.link.latency_max = 4;
        plan.link.drop_probability = drop;
        plan.link.duplicate_probability = 0.2;
        plan.link.reorder_probability = 0.2;
        plan.link.reorder_max_extra = 3;
        plan
    }

    fn run_history(plan: NetFaultPlan) -> (String, NetStats, Vec<(u64, u64, bool)>) {
        let mut net: Network<u64> = Network::new(3, plan).unwrap();
        let mut seen = Vec::new();
        for step in 0..40u64 {
            net.send(0, 1, step);
            if step % 3 == 0 {
                net.send(1, 2, 1000 + step);
            }
            for d in net.tick() {
                seen.push((d.seq, d.payload, d.duplicate));
            }
        }
        for _ in 0..16 {
            for d in net.tick() {
                seen.push((d.seq, d.payload, d.duplicate));
            }
        }
        assert!(net.idle());
        (net.digest_hex(), *net.stats(), seen)
    }

    #[test]
    fn identical_runs_have_identical_tapes() {
        let a = run_history(noisy_plan(11, 0.3));
        let b = run_history(noisy_plan(11, 0.3));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_history(noisy_plan(11, 0.3));
        let b = run_history(noisy_plan(12, 0.3));
        assert_ne!(a.0, b.0);
    }

    #[test]
    fn drops_nest_across_probabilities() {
        // Every message delivered under the heavier plan is delivered
        // under the lighter one: raising drop_probability only removes
        // deliveries (CRN nesting at the substrate level).
        let (_, light_stats, light) = run_history(noisy_plan(7, 0.1));
        let (_, heavy_stats, heavy) = run_history(noisy_plan(7, 0.5));
        let light_seqs: std::collections::BTreeSet<u64> =
            light.iter().map(|&(seq, _, _)| seq).collect();
        for &(seq, _, _) in &heavy {
            assert!(light_seqs.contains(&seq), "seq {seq} lost only at p=0.1");
        }
        assert!(heavy_stats.dropped_loss > light_stats.dropped_loss);
    }

    #[test]
    fn partition_strands_in_flight_messages_and_heals() {
        let mut plan = NetFaultPlan::ideal(5);
        plan.link.latency_min = 3;
        plan.link.latency_max = 3;
        plan.partitions.push(PartitionWindow {
            from: 2,
            until: 6,
            isolated: 1,
        });
        let mut net: Network<&'static str> = Network::new(2, plan).unwrap();
        net.send(0, 1, "in-flight"); // due tick 3, stranded by the window
        let mut delivered = Vec::new();
        for tick in 1..=10u64 {
            if tick == 7 {
                // Clock is 6 here (tick() below advances it to 7), so
                // the message is due at tick 9 — after the heal at 6.
                net.send(0, 1, "after-heal");
            }
            for d in net.tick() {
                delivered.push((tick, d.payload));
            }
        }
        assert_eq!(delivered, vec![(9, "after-heal")]);
        assert_eq!(net.stats().dropped_partition, 1);
    }

    #[test]
    fn reorder_model_counts_reordered_messages() {
        let mut plan = NetFaultPlan::ideal(3);
        plan.link.reorder_probability = 1.0;
        plan.link.reorder_max_extra = 2;
        let mut net: Network<u64> = Network::new(2, plan).unwrap();
        net.send(0, 1, 7);
        assert_eq!(net.stats().reordered, 1);
        assert_eq!(net.stats().dropped_loss, 0);
    }

    #[test]
    fn ideal_network_is_fifo_per_link() {
        let mut net: Network<u64> = Network::new(2, NetFaultPlan::ideal(0)).unwrap();
        for i in 0..10 {
            net.send(0, 1, i);
        }
        let got: Vec<u64> = net.tick().into_iter().map(|d| d.payload).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(net.idle());
    }
}
