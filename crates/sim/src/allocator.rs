//! Max-min fair-share resource allocation.
//!
//! §II of the paper: "the edge platform circulates all the available
//! resources to microservices present in the edge cloud following a fair
//! sharing policy". We implement classic *water-filling* max-min fairness:
//! capacity is divided equally, but no microservice receives more than it
//! demands; freed headroom is redistributed among the still-unsatisfied
//! ones.

use edge_common::units::Resource;

/// Computes the max-min fair allocation of `capacity` among consumers
/// with the given `demands`.
///
/// Properties (all tested):
/// * Σ allocation ≤ capacity;
/// * allocation_i ≤ demand_i;
/// * if Σ demands ≤ capacity every demand is met exactly;
/// * otherwise every unsatisfied consumer receives the same share, and
///   that share is at least as large as any satisfied consumer's demand.
///
/// # Examples
///
/// ```
/// use edge_sim::allocator::fair_share;
/// use edge_common::units::Resource;
///
/// let demands = [Resource::new(2.0).unwrap(),
///                Resource::new(10.0).unwrap(),
///                Resource::new(10.0).unwrap()];
/// let alloc = fair_share(Resource::new(10.0).unwrap(), &demands);
/// // The small demand is met; the rest split the remaining 8 equally.
/// assert_eq!(alloc[0].value(), 2.0);
/// assert_eq!(alloc[1].value(), 4.0);
/// assert_eq!(alloc[2].value(), 4.0);
/// ```
pub fn fair_share(capacity: Resource, demands: &[Resource]) -> Vec<Resource> {
    let n = demands.len();
    if n == 0 {
        return Vec::new();
    }
    let mut alloc = vec![Resource::ZERO; n];
    let mut remaining_capacity = capacity.value();
    let mut unsatisfied: Vec<usize> = (0..n).filter(|&i| demands[i].value() > 0.0).collect();

    // Water-filling: repeatedly grant the equal share, capping at each
    // consumer's demand; iterate until no consumer is capped.
    while !unsatisfied.is_empty() && remaining_capacity > 1e-12 {
        let share = remaining_capacity / unsatisfied.len() as f64;
        let mut capped = Vec::new();
        let mut still = Vec::new();
        for &i in &unsatisfied {
            let want = demands[i].value() - alloc[i].value();
            if want <= share {
                capped.push((i, want));
            } else {
                still.push(i);
            }
        }
        if capped.is_empty() {
            // Nobody capped: everyone takes the equal share and we are
            // done.
            for &i in &unsatisfied {
                alloc[i] += Resource::new_unchecked(share);
            }
            break;
        }
        for (i, want) in capped {
            alloc[i] += Resource::new_unchecked(want);
            remaining_capacity -= want;
        }
        unsatisfied = still;
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(v: f64) -> Resource {
        Resource::new(v).unwrap()
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(fair_share(r(10.0), &[]).is_empty());
    }

    #[test]
    fn plenty_of_capacity_meets_all_demands() {
        let demands = [r(1.0), r(2.0), r(3.0)];
        let alloc = fair_share(r(100.0), &demands);
        for (a, d) in alloc.iter().zip(&demands) {
            assert!((a.value() - d.value()).abs() < 1e-9);
        }
    }

    #[test]
    fn scarce_capacity_splits_equally() {
        let demands = [r(10.0), r(10.0)];
        let alloc = fair_share(r(6.0), &demands);
        assert!((alloc[0].value() - 3.0).abs() < 1e-9);
        assert!((alloc[1].value() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn small_demands_release_headroom() {
        let demands = [r(1.0), r(20.0), r(20.0)];
        let alloc = fair_share(r(11.0), &demands);
        assert!((alloc[0].value() - 1.0).abs() < 1e-9);
        assert!((alloc[1].value() - 5.0).abs() < 1e-9);
        assert!((alloc[2].value() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_demands_get_nothing() {
        let demands = [r(0.0), r(5.0)];
        let alloc = fair_share(r(10.0), &demands);
        assert_eq!(alloc[0], Resource::ZERO);
        assert!((alloc[1].value() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_allocates_nothing() {
        let demands = [r(5.0), r(5.0)];
        let alloc = fair_share(Resource::ZERO, &demands);
        assert!(alloc.iter().all(|a| a.is_zero()));
    }

    proptest! {
        #[test]
        fn invariants_hold(
            capacity in 0.0f64..100.0,
            demands in proptest::collection::vec(0.0f64..30.0, 0..12),
        ) {
            let capacity = r(capacity);
            let demands: Vec<Resource> = demands.into_iter().map(r).collect();
            let alloc = fair_share(capacity, &demands);
            prop_assert_eq!(alloc.len(), demands.len());
            let total: f64 = alloc.iter().map(|a| a.value()).sum();
            prop_assert!(total <= capacity.value() + 1e-6, "over-allocated {total}");
            for (a, d) in alloc.iter().zip(&demands) {
                prop_assert!(a.value() <= d.value() + 1e-6, "alloc above demand");
                prop_assert!(a.value() >= 0.0);
            }
            // If total demand fits, everyone is satisfied.
            let want: f64 = demands.iter().map(|d| d.value()).sum();
            if want <= capacity.value() {
                for (a, d) in alloc.iter().zip(&demands) {
                    prop_assert!((a.value() - d.value()).abs() < 1e-6);
                }
            } else if !demands.is_empty() {
                // Scarce: capacity is fully used.
                prop_assert!((total - capacity.value()).abs() < 1e-6,
                    "capacity unused under scarcity: {total} < {}", capacity.value());
            }
        }

        #[test]
        fn max_min_property(
            capacity in 1.0f64..50.0,
            demands in proptest::collection::vec(0.1f64..30.0, 2..10),
        ) {
            // No unsatisfied consumer may end up with less than any other
            // consumer's allocation (that is what max-min means).
            let capacity = r(capacity);
            let demands: Vec<Resource> = demands.into_iter().map(r).collect();
            let alloc = fair_share(capacity, &demands);
            for i in 0..alloc.len() {
                let unsatisfied = alloc[i].value() < demands[i].value() - 1e-6;
                if unsatisfied {
                    for j in 0..alloc.len() {
                        prop_assert!(alloc[j].value() <= alloc[i].value() + 1e-6,
                            "consumer {j} ({}) exceeds unsatisfied {i} ({})",
                            alloc[j].value(), alloc[i].value());
                    }
                }
            }
        }
    }
}
