//! Edge clouds: capacity-bounded pools hosting microservices.

use edge_common::id::{EdgeCloudId, MicroserviceId};
use edge_common::units::Resource;

/// An edge cloud (a macro base station co-located with a server in the
/// paper's setting): a fixed resource capacity shared by its hosted
/// microservices.
#[derive(Debug, Clone)]
pub struct EdgeCloud {
    id: EdgeCloudId,
    capacity: Resource,
    members: Vec<MicroserviceId>,
}

impl EdgeCloud {
    /// Creates an empty edge cloud with the given capacity.
    pub fn new(id: EdgeCloudId, capacity: Resource) -> Self {
        EdgeCloud {
            id,
            capacity,
            members: Vec::new(),
        }
    }

    /// This cloud's id.
    pub fn id(&self) -> EdgeCloudId {
        self.id
    }

    /// Total resource capacity of this cloud.
    pub fn capacity(&self) -> Resource {
        self.capacity
    }

    /// Replaces the cloud's capacity (failure injection: a co-located
    /// server failing or returning).
    pub fn set_capacity(&mut self, capacity: Resource) {
        self.capacity = capacity;
    }

    /// Microservices hosted here.
    pub fn members(&self) -> &[MicroserviceId] {
        &self.members
    }

    /// Registers a microservice on this cloud.
    ///
    /// # Panics
    ///
    /// Panics if the microservice is already a member — double placement
    /// would double-count it during fair sharing.
    pub fn host(&mut self, ms: MicroserviceId) {
        assert!(
            !self.members.contains(&ms),
            "{ms} is already hosted on {}",
            self.id
        );
        self.members.push(ms);
    }

    /// Returns `true` if the microservice runs on this cloud.
    pub fn hosts(&self, ms: MicroserviceId) -> bool {
        self.members.contains(&ms)
    }
}

/// Places `n` microservices round-robin across `clouds` (the paper
/// "randomly deploys 25–75 microservices on different edge clouds";
/// round-robin keeps populations balanced and experiments deterministic).
///
/// Returns the cloud id assigned to each microservice, and registers each
/// on its cloud.
pub fn place_round_robin(clouds: &mut [EdgeCloud], n: usize) -> Vec<EdgeCloudId> {
    assert!(
        !clouds.is_empty(),
        "need at least one cloud to place microservices"
    );
    (0..n)
        .map(|m| {
            let c = m % clouds.len();
            clouds[c].host(MicroserviceId::new(m));
            clouds[c].id()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hosting_registers_members() {
        let mut c = EdgeCloud::new(EdgeCloudId::new(0), Resource::new(100.0).unwrap());
        c.host(MicroserviceId::new(1));
        c.host(MicroserviceId::new(2));
        assert!(c.hosts(MicroserviceId::new(1)));
        assert!(!c.hosts(MicroserviceId::new(3)));
        assert_eq!(c.members().len(), 2);
    }

    #[test]
    #[should_panic(expected = "already hosted")]
    fn double_hosting_panics() {
        let mut c = EdgeCloud::new(EdgeCloudId::new(0), Resource::new(1.0).unwrap());
        c.host(MicroserviceId::new(1));
        c.host(MicroserviceId::new(1));
    }

    #[test]
    fn round_robin_balances() {
        let mut clouds: Vec<EdgeCloud> = (0..3)
            .map(|i| EdgeCloud::new(EdgeCloudId::new(i), Resource::new(10.0).unwrap()))
            .collect();
        let placement = place_round_robin(&mut clouds, 7);
        assert_eq!(placement.len(), 7);
        let counts: Vec<usize> = clouds.iter().map(|c| c.members().len()).collect();
        assert_eq!(counts, vec![3, 2, 2]);
        assert_eq!(placement[0], EdgeCloudId::new(0));
        assert_eq!(placement[4], EdgeCloudId::new(1));
    }
}
