//! The round-based simulation engine.
//!
//! Each call to [`Simulation::step`] advances one round of §II's
//! time-slotted system:
//!
//! 1. inject the trace's arrivals into the target microservices' queues;
//! 2. allocate each cloud's capacity among its microservices by max-min
//!    fair sharing on queued work, distributing idle headroom equally
//!    (idle microservices *hold* spare resources — that is precisely what
//!    the auction later reclaims);
//! 3. apply any resource transfers submitted since the previous round
//!    (the auction's reallocation hook);
//! 4. process every queue with the resulting allocations;
//! 5. record a [`MsMetrics`] row per microservice into the shared
//!    [`MetricsHub`].

use crate::allocator::fair_share;
use crate::cloud::EdgeCloud;
use crate::error::SimError;
use crate::events::{EventSchedule, SimEvent};
use crate::metrics::{MetricsHub, MsMetrics};
use crate::microservice::MicroserviceState;
use edge_common::id::{EdgeCloudId, MicroserviceId, Round};
use edge_common::indicator::ObservedIndicators;
use edge_common::units::Resource;
use edge_workload::trace::RequestTrace;
use std::sync::Arc;

/// Static configuration of a simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of edge clouds (paper: 10).
    pub num_clouds: usize,
    /// Resource capacity per cloud, in resource units.
    ///
    /// The default (4.0) makes the §V-A default workload mildly scarce —
    /// roughly the regime where the paper's auction is interesting: some
    /// microservices hold spare resources while others queue.
    pub cloud_capacity: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            num_clouds: 10,
            cloud_capacity: 4.0,
        }
    }
}

/// A running edge-cloud simulation over a request trace.
#[derive(Debug)]
pub struct Simulation {
    clouds: Vec<EdgeCloud>,
    services: Vec<MicroserviceState>,
    trace: RequestTrace,
    next_round: u64,
    metrics: Arc<MetricsHub>,
    pending_transfers: Vec<(MicroserviceId, MicroserviceId, Resource)>,
    events: EventSchedule,
    paused: Vec<bool>,
    crashed: Vec<bool>,
    observed: ObservedIndicators,
    last_completions: Vec<edge_workload::request::Request>,
    telemetry: Option<Arc<edge_telemetry::Collector>>,
}

impl Simulation {
    /// Builds a simulation over the given trace, placing the trace's
    /// microservices round-robin over `config.num_clouds` clouds.
    ///
    /// # Panics
    ///
    /// Panics if `config.num_clouds == 0` or `cloud_capacity` is not
    /// finite and non-negative.
    pub fn new(trace: RequestTrace, config: SimConfig) -> Self {
        Self::with_placement(trace, config, crate::placement::Placement::RoundRobin)
    }

    /// Like [`new`](Self::new), with an explicit placement strategy.
    ///
    /// # Panics
    ///
    /// As [`new`](Self::new), plus the strategy's own validation.
    pub fn with_placement(
        trace: RequestTrace,
        config: SimConfig,
        strategy: crate::placement::Placement,
    ) -> Self {
        assert!(config.num_clouds > 0, "need at least one edge cloud");
        let capacity = Resource::new(config.cloud_capacity)
            .expect("cloud capacity must be finite and non-negative");
        let mut clouds: Vec<EdgeCloud> = (0..config.num_clouds)
            .map(|i| EdgeCloud::new(EdgeCloudId::new(i), capacity))
            .collect();
        let n = trace.config().num_microservices;
        let placement = crate::placement::place(&mut clouds, n, strategy);
        let services: Vec<MicroserviceState> = placement
            .iter()
            .enumerate()
            .map(|(m, &cloud)| MicroserviceState::new(MicroserviceId::new(m), cloud))
            .collect();
        let n_services = services.len();
        Simulation {
            clouds,
            services,
            trace,
            next_round: 0,
            metrics: MetricsHub::new(),
            pending_transfers: Vec::new(),
            events: EventSchedule::new(),
            paused: vec![false; n_services],
            crashed: vec![false; n_services],
            observed: ObservedIndicators::all(),
            last_completions: Vec::new(),
            telemetry: None,
        }
    }

    /// Attaches a telemetry collector: every [`step`](Self::step)
    /// emits one `sim.round` event summarising the round's metrics
    /// batch (arrivals, completions, queue depth, utilisation).
    ///
    /// The events are deterministic — they carry only round-derived
    /// aggregates, never wall-clock time — so traces are byte-identical
    /// across runs with the same trace and schedule.
    pub fn set_telemetry(&mut self, collector: Arc<edge_telemetry::Collector>) {
        self.telemetry = Some(collector);
    }

    /// The requests completed during the most recent
    /// [`step`](Self::step) — feed these to an
    /// [`SlaTracker`](crate::sla::SlaTracker) to account deadline
    /// violations.
    pub fn last_completions(&self) -> &[edge_workload::request::Request] {
        &self.last_completions
    }

    /// Installs a disturbance schedule (failure injection). Replaces any
    /// previously installed schedule.
    pub fn set_events(&mut self, events: EventSchedule) {
        self.events = events;
    }

    /// Whether a microservice is currently paused by a
    /// [`SimEvent::PauseService`] event.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownMicroservice`] for an out-of-range id.
    pub fn is_paused(&self, ms: MicroserviceId) -> Result<bool, SimError> {
        self.paused
            .get(ms.index())
            .copied()
            .ok_or(SimError::UnknownMicroservice(ms))
    }

    /// Whether a microservice is currently crashed by a
    /// [`SimEvent::MsCrash`] event (allocation zeroed, queue frozen,
    /// arrivals dropped).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownMicroservice`] for an out-of-range id.
    pub fn is_crashed(&self, ms: MicroserviceId) -> Result<bool, SimError> {
        self.crashed
            .get(ms.index())
            .copied()
            .ok_or(SimError::UnknownMicroservice(ms))
    }

    /// Which demand indicators are currently observable — feed this to
    /// the `edge-demand` estimator's partial-observation entry point so
    /// estimation degrades gracefully instead of trusting stale sensor
    /// readings.
    pub fn observed_indicators(&self) -> ObservedIndicators {
        self.observed
    }

    /// The shared metrics hub (clone the `Arc` to read concurrently).
    pub fn metrics(&self) -> Arc<MetricsHub> {
        self.metrics.clone()
    }

    /// The round that will execute on the next [`step`](Self::step) call.
    pub fn next_round(&self) -> Round {
        Round::new(self.next_round)
    }

    /// Number of microservices in the simulation.
    pub fn num_services(&self) -> usize {
        self.services.len()
    }

    /// Read access to a microservice's state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownMicroservice`] for an out-of-range id.
    pub fn service(&self, ms: MicroserviceId) -> Result<&MicroserviceState, SimError> {
        self.services
            .get(ms.index())
            .ok_or(SimError::UnknownMicroservice(ms))
    }

    /// Resources a microservice currently holds beyond its queued work —
    /// what it could yield to the market without starving itself.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownMicroservice`] for an out-of-range id.
    pub fn spare_of(&self, ms: MicroserviceId) -> Result<Resource, SimError> {
        let s = self.service(ms)?;
        Ok(s.allocation().saturating_sub(s.queued_work()))
    }

    /// Schedules a resource transfer to apply at the next round's
    /// allocation phase — the reallocation hook the auction uses to move
    /// reclaimed resources to needy microservices.
    ///
    /// The transfer is clamped at apply time to what the source actually
    /// holds after fair sharing.
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownMicroservice`] — either endpoint is unknown.
    /// * [`SimError::MismatchedClouds`] — endpoints live on different
    ///   clouds (resources are physical and cloud-local).
    pub fn schedule_transfer(
        &mut self,
        from: MicroserviceId,
        to: MicroserviceId,
        amount: Resource,
    ) -> Result<(), SimError> {
        let from_cloud = self.service(from)?.cloud();
        let to_cloud = self.service(to)?.cloud();
        if from_cloud != to_cloud {
            return Err(SimError::MismatchedClouds {
                from: from_cloud,
                to: to_cloud,
            });
        }
        self.pending_transfers.push((from, to, amount));
        Ok(())
    }

    /// Runs one round; returns the executed round, or `None` when the
    /// trace is exhausted.
    pub fn step(&mut self) -> Option<Round> {
        if self.next_round >= self.trace.num_rounds() {
            return None;
        }
        let now = Round::new(self.next_round);

        // 0. Disturbances scheduled for this round.
        for event in self.events.for_round(self.next_round).to_vec() {
            match event {
                SimEvent::CapacityChange { cloud, capacity } => {
                    if let Some(c) = self.clouds.get_mut(cloud.index()) {
                        c.set_capacity(capacity);
                    }
                }
                SimEvent::PauseService { ms } => {
                    if let Some(p) = self.paused.get_mut(ms.index()) {
                        *p = true;
                    }
                }
                SimEvent::ResumeService { ms } => {
                    if let Some(p) = self.paused.get_mut(ms.index()) {
                        *p = false;
                    }
                }
                SimEvent::MsCrash { ms } => {
                    if let Some(c) = self.crashed.get_mut(ms.index()) {
                        *c = true;
                    }
                }
                SimEvent::MsRestart { ms } => {
                    if let Some(c) = self.crashed.get_mut(ms.index()) {
                        *c = false;
                    }
                }
                SimEvent::SensorDropout { indicator } => {
                    self.observed = self.observed.without(indicator);
                }
                SimEvent::SensorRestore { indicator } => {
                    self.observed = self.observed.with(indicator);
                }
                // Delivery shortfalls are a market-layer fault: the
                // engine has no notion of auction commitments, so the
                // event passes through untouched for the recovery
                // pipeline to consume.
                SimEvent::SellerDefault { .. } => {}
            }
        }
        // A service is offline when paused (soft eviction, queue keeps
        // growing) or crashed (hard failure, queue frozen).
        let offline: Vec<bool> = self
            .paused
            .iter()
            .zip(&self.crashed)
            .map(|(&p, &c)| p || c)
            .collect();

        // 1. Arrivals. Crashed services drop theirs: nothing is
        // listening, so the requests are lost rather than queued.
        let mut received_round = vec![0u64; self.services.len()];
        for request in self.trace.requests_at(now).to_vec() {
            if self.crashed[request.target.index()] {
                continue;
            }
            received_round[request.target.index()] += 1;
            self.services[request.target.index()].enqueue(request);
        }

        // 2. Fair share per cloud, idle headroom split equally.
        for cloud in &self.clouds {
            let members = cloud.members();
            if members.is_empty() {
                continue;
            }
            let demands: Vec<Resource> = members
                .iter()
                .map(|&m| {
                    if offline[m.index()] {
                        Resource::ZERO
                    } else {
                        self.services[m.index()].queued_work()
                    }
                })
                .collect();
            let alloc = fair_share(cloud.capacity(), &demands);
            let used: f64 = alloc.iter().map(|a| a.value()).sum();
            let active = members.iter().filter(|&&m| !offline[m.index()]).count();
            let headroom = if active > 0 {
                (cloud.capacity().value() - used).max(0.0) / active as f64
            } else {
                0.0
            };
            for (&m, a) in members.iter().zip(alloc) {
                let allocation = if offline[m.index()] {
                    Resource::ZERO
                } else {
                    a + Resource::new_unchecked(headroom)
                };
                self.services[m.index()].set_allocation(allocation);
            }
        }

        // 3. Transfers (clamped to the source's holding).
        for (from, to, amount) in std::mem::take(&mut self.pending_transfers) {
            let available = self.services[from.index()].allocation();
            let moved = amount.min(available);
            let from_alloc = available - moved;
            self.services[from.index()].set_allocation(from_alloc);
            let to_alloc = self.services[to.index()].allocation() + moved;
            self.services[to.index()].set_allocation(to_alloc);
        }

        // 4. Processing.
        let mut served_round = vec![0u64; self.services.len()];
        let mut work_round = vec![0.0f64; self.services.len()];
        self.last_completions.clear();
        for s in &mut self.services {
            let out = s.process_round(now);
            served_round[s.id().index()] = out.completed.len() as u64;
            work_round[s.id().index()] = out.work_processed;
            self.last_completions.extend(out.completed);
        }

        // 5. Metrics.
        let mut batch = Vec::with_capacity(self.services.len());
        for cloud in &self.clouds {
            let members = cloud.members();
            let max_allocation = members
                .iter()
                .map(|&m| self.services[m.index()].allocation().value())
                .fold(0.0f64, f64::max);
            let neighbors_active = members
                .iter()
                .filter(|&&m| {
                    served_round[m.index()] > 0 || self.services[m.index()].queue_len() > 0
                })
                .count();
            for &m in members {
                let s = &self.services[m.index()];
                let allocation = s.allocation().value();
                let utilization = if allocation > 1e-12 {
                    (work_round[m.index()] / allocation).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                batch.push(MsMetrics {
                    ms: m,
                    round: now,
                    allocation,
                    max_allocation,
                    received_total: s.received_total(),
                    served_total: s.served_total(),
                    received_round: received_round[m.index()],
                    served_round: served_round[m.index()],
                    queue_len: s.queue_len(),
                    queued_work: s.queued_work().value(),
                    work_arrived_total: s.work_arrived_total(),
                    work_done_total: s.work_done_total(),
                    utilization,
                    neighbors_active,
                    mean_waiting: s.mean_waiting(),
                });
            }
        }
        batch.sort_by_key(|m| m.ms);
        let arrivals: u64 = batch.iter().map(|m| m.received_round).sum();
        let completions: u64 = batch.iter().map(|m| m.served_round).sum();
        let queued: u64 = batch.iter().map(|m| m.queue_len as u64).sum();
        let queued_work: f64 = batch.iter().map(|m| m.queued_work).sum();
        let busy = batch.iter().filter(|m| m.utilization > 0.0).count();
        let mean_util = if batch.is_empty() {
            0.0
        } else {
            batch.iter().map(|m| m.utilization).sum::<f64>() / batch.len() as f64
        };
        let mean_waiting = if batch.is_empty() {
            0.0
        } else {
            batch.iter().map(|m| m.mean_waiting).sum::<f64>() / batch.len() as f64
        };
        let offline_count = offline.iter().filter(|&&o| o).count();
        // Live metrics: the paper's three demand indicators (§III) plus
        // throughput counters, read-only on already-computed aggregates.
        crate::live::SimLive::get().record_round(
            arrivals,
            completions,
            queued,
            queued_work,
            mean_waiting,
            mean_util,
            offline_count,
        );
        if let Some(collector) = &self.telemetry {
            use edge_telemetry::{Level, Sink, Value};
            collector.emit(
                Level::Info,
                "sim.round",
                vec![
                    ("round", Value::from(now.index())),
                    ("arrivals", Value::from(arrivals)),
                    ("completions", Value::from(completions)),
                    ("queue_len", Value::from(queued)),
                    ("queued_work", Value::from(queued_work)),
                    ("busy_services", Value::from(busy)),
                    ("offline_services", Value::from(offline_count)),
                    ("mean_utilization", Value::from(mean_util)),
                ],
            );
        }
        self.metrics.record_round(batch);

        self.next_round += 1;
        Some(now)
    }

    /// Aggregate per-class service statistics across all microservices —
    /// evidence for the priority claim (§V-A: "higher priority is given
    /// to delay-sensitive microservices").
    pub fn class_report(
        &self,
    ) -> [(
        edge_workload::request::RequestClass,
        crate::microservice::ClassCounters,
    ); 2] {
        use edge_workload::request::RequestClass;
        RequestClass::all().map(|class| {
            let mut total = crate::microservice::ClassCounters::default();
            for s in &self.services {
                let c = s.class_counters(class);
                total.received += c.received;
                total.served += c.served;
                total.waiting_rounds += c.waiting_rounds;
            }
            (class, total)
        })
    }

    /// Runs the simulation to the end of its trace; returns the number of
    /// rounds executed.
    pub fn run_to_end(&mut self) -> u64 {
        let mut n = 0;
        while self.step().is_some() {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_common::rng::seeded_rng;
    use edge_workload::trace::TraceConfig;

    fn small_sim(seed: u64) -> Simulation {
        let mut rng = seeded_rng(seed);
        let trace = RequestTrace::generate(
            TraceConfig {
                num_microservices: 6,
                rounds: 8,
                ..TraceConfig::default()
            },
            &mut rng,
        );
        Simulation::new(
            trace,
            SimConfig {
                num_clouds: 2,
                cloud_capacity: 5.0,
            },
        )
    }

    #[test]
    fn runs_to_trace_end() {
        let mut sim = small_sim(41);
        assert_eq!(sim.run_to_end(), 8);
        assert!(sim.step().is_none());
        assert_eq!(sim.metrics().num_rounds(), 8);
    }

    #[test]
    fn allocations_conserve_cloud_capacity() {
        let mut sim = small_sim(42);
        while sim.step().is_some() {
            for cloud in &sim.clouds {
                let total: f64 = cloud
                    .members()
                    .iter()
                    .map(|&m| sim.services[m.index()].allocation().value())
                    .sum();
                assert!(
                    total <= cloud.capacity().value() + 1e-6,
                    "cloud over-allocated: {total}"
                );
            }
        }
    }

    #[test]
    fn transfers_move_allocation_within_cloud() {
        let mut sim = small_sim(43);
        // ms#0 and ms#2 share cloud 0 (round robin over 2 clouds).
        let from = MicroserviceId::new(0);
        let to = MicroserviceId::new(2);
        sim.schedule_transfer(from, to, Resource::new(0.5).unwrap())
            .unwrap();
        sim.step().unwrap();
        // The transfer happened inside the step; verify indirectly via
        // metrics: recipient's allocation should exceed the donor's when
        // both had similar queue demand, or at minimum the step succeeded
        // with conservation (checked elsewhere). Here we check the
        // pending queue drained.
        assert!(sim.pending_transfers.is_empty());
    }

    #[test]
    fn cross_cloud_transfers_are_rejected() {
        let mut sim = small_sim(44);
        // Round-robin over 2 clouds: ms#0 on cloud 0, ms#1 on cloud 1.
        let err = sim
            .schedule_transfer(
                MicroserviceId::new(0),
                MicroserviceId::new(1),
                Resource::new(0.1).unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, SimError::MismatchedClouds { .. }));
    }

    #[test]
    fn unknown_ids_are_rejected() {
        let mut sim = small_sim(45);
        let err = sim
            .schedule_transfer(
                MicroserviceId::new(99),
                MicroserviceId::new(0),
                Resource::new(0.1).unwrap(),
            )
            .unwrap_err();
        assert_eq!(err, SimError::UnknownMicroservice(MicroserviceId::new(99)));
        assert!(sim.service(MicroserviceId::new(99)).is_err());
    }

    #[test]
    fn metrics_rows_cover_every_service_every_round() {
        let mut sim = small_sim(46);
        sim.run_to_end();
        let hub = sim.metrics();
        for t in 0..8 {
            let batch = hub.at_round(Round::new(t));
            assert_eq!(batch.len(), 6, "round {t}");
            // Sorted by microservice id.
            assert!(batch.windows(2).all(|w| w[0].ms < w[1].ms));
        }
    }

    #[test]
    fn work_conservation_across_the_run() {
        let mut sim = small_sim(47);
        sim.run_to_end();
        for s in &sim.services {
            let accounted = s.work_done_total() + s.queued_work().value();
            assert!(
                (accounted - s.work_arrived_total()).abs() < 1e-6,
                "work leaked for {}: arrived {} done {} queued {}",
                s.id(),
                s.work_arrived_total(),
                s.work_done_total(),
                s.queued_work().value()
            );
        }
    }

    #[test]
    fn spare_reflects_headroom() {
        let mut sim = small_sim(48);
        sim.step();
        for m in 0..sim.num_services() {
            let ms = MicroserviceId::new(m);
            let spare = sim.spare_of(ms).unwrap();
            assert!(spare.value() >= 0.0);
        }
    }

    #[test]
    fn sla_tracker_integrates_with_the_engine() {
        use crate::sla::{SlaPolicy, SlaTracker};
        let mut sim = small_sim(98);
        let mut tracker = SlaTracker::new(SlaPolicy::default());
        let mut total_completed = 0usize;
        while let Some(round) = sim.step() {
            tracker.record_batch(sim.last_completions(), round);
            total_completed += sim.last_completions().len();
        }
        let sensitive = tracker.counters(edge_workload::request::RequestClass::DelaySensitive);
        let tolerant = tracker.counters(edge_workload::request::RequestClass::DelayTolerant);
        assert_eq!(
            (sensitive.on_time + sensitive.late + tolerant.on_time + tolerant.late) as usize,
            total_completed
        );
        assert!((0.0..=1.0).contains(&tracker.overall_violation_rate()));
    }

    #[test]
    fn delay_sensitive_requests_wait_no_longer_than_tolerant() {
        use edge_workload::request::RequestClass;
        // Scarce capacity so queues build and priority matters.
        let mut rng = seeded_rng(99);
        let trace = RequestTrace::generate(
            TraceConfig {
                num_microservices: 6,
                rounds: 20,
                target_requests_per_round: Some(200),
                ..TraceConfig::default()
            },
            &mut rng,
        );
        let mut sim = Simulation::new(
            trace,
            SimConfig {
                num_clouds: 2,
                cloud_capacity: 3.0,
            },
        );
        sim.run_to_end();
        let report = sim.class_report();
        let sensitive = report
            .iter()
            .find(|(c, _)| *c == RequestClass::DelaySensitive)
            .unwrap()
            .1;
        let tolerant = report
            .iter()
            .find(|(c, _)| *c == RequestClass::DelayTolerant)
            .unwrap()
            .1;
        // Classes live on different microservices here, so strict
        // dominance is not guaranteed; but priority ordering within
        // batches must keep sensitive waiting in the same ballpark or
        // better.
        if sensitive.served > 10 && tolerant.served > 10 {
            assert!(
                sensitive.mean_waiting() <= tolerant.mean_waiting() + 2.0,
                "sensitive {} vs tolerant {}",
                sensitive.mean_waiting(),
                tolerant.mean_waiting()
            );
        }
        let (recv, served): (u64, u64) = (
            sensitive.received + tolerant.received,
            sensitive.served + tolerant.served,
        );
        assert!(served <= recv);
    }

    #[test]
    fn capacity_change_event_shrinks_allocations() {
        let mut sim = small_sim(50);
        let mut events = crate::events::EventSchedule::new();
        events.at(
            2,
            SimEvent::CapacityChange {
                cloud: EdgeCloudId::new(0),
                capacity: Resource::new(0.5).unwrap(),
            },
        );
        sim.set_events(events);
        sim.step(); // round 0
        sim.step(); // round 1
        sim.step(); // round 2: capacity now 0.5
        let total: f64 = sim.clouds[0]
            .members()
            .iter()
            .map(|&m| sim.services[m.index()].allocation().value())
            .sum();
        assert!(
            total <= 0.5 + 1e-9,
            "cloud 0 over-allocated after failure: {total}"
        );
    }

    #[test]
    fn paused_service_starves_and_resumes() {
        let mut sim = small_sim(51);
        let victim = MicroserviceId::new(0);
        let mut events = crate::events::EventSchedule::new();
        events
            .at(1, SimEvent::PauseService { ms: victim })
            .at(4, SimEvent::ResumeService { ms: victim });
        sim.set_events(events);
        sim.step(); // round 0: normal
        assert!(!sim.is_paused(victim).unwrap());
        sim.step(); // round 1: paused
        assert!(sim.is_paused(victim).unwrap());
        assert_eq!(sim.service(victim).unwrap().allocation(), Resource::ZERO);
        let backlog_paused = sim.service(victim).unwrap().queued_work().value();
        sim.step(); // round 2: still paused, queue cannot shrink
        assert!(sim.service(victim).unwrap().queued_work().value() >= backlog_paused - 1e-9);
        sim.step(); // round 3
        sim.step(); // round 4: resumed
        assert!(!sim.is_paused(victim).unwrap());
        assert!(sim.service(victim).unwrap().allocation().value() > 0.0);
    }

    #[test]
    fn pause_releases_capacity_to_neighbours() {
        let mut sim = small_sim(52);
        let mut events = crate::events::EventSchedule::new();
        events.at(
            0,
            SimEvent::PauseService {
                ms: MicroserviceId::new(0),
            },
        );
        sim.set_events(events);
        sim.step();
        // Cloud 0 members are ms#0, ms#2, ms#4 (round robin over 2
        // clouds); the paused ms#0's share goes to the others.
        let others: f64 = [2usize, 4]
            .iter()
            .map(|&m| sim.services[m].allocation().value())
            .sum();
        assert!(others > 0.0);
        let total: f64 = sim.clouds[0]
            .members()
            .iter()
            .map(|&m| sim.services[m.index()].allocation().value())
            .sum();
        assert!(total <= sim.clouds[0].capacity().value() + 1e-9);
    }

    #[test]
    fn crashed_service_freezes_queue_and_drops_arrivals() {
        let victim = MicroserviceId::new(0);
        // Baseline run: how many requests ms#0 receives in rounds 1–3.
        let mut baseline = small_sim(60);
        for _ in 0..4 {
            baseline.step();
        }
        let baseline_received = baseline.service(victim).unwrap().received_total();

        let mut sim = small_sim(60);
        let mut events = crate::events::EventSchedule::new();
        events
            .at(1, SimEvent::MsCrash { ms: victim })
            .at(4, SimEvent::MsRestart { ms: victim });
        sim.set_events(events);
        sim.step(); // round 0: normal
        let received_before_crash = sim.service(victim).unwrap().received_total();
        let backlog_at_crash = sim.service(victim).unwrap().queued_work().value();
        sim.step(); // round 1: crashed
        assert!(sim.is_crashed(victim).unwrap());
        assert_eq!(sim.service(victim).unwrap().allocation(), Resource::ZERO);
        sim.step(); // round 2
        sim.step(); // round 3
                    // Queue frozen: no arrivals accepted, no work processed.
        assert_eq!(
            sim.service(victim).unwrap().received_total(),
            received_before_crash,
            "crashed service must drop arrivals"
        );
        assert!(
            (sim.service(victim).unwrap().queued_work().value() - backlog_at_crash).abs() < 1e-9,
            "crashed service's queue must stay frozen"
        );
        // The baseline (same seed, no crash) did receive traffic in that
        // window, so the drop is observable.
        assert!(baseline_received >= received_before_crash);
        sim.step(); // round 4: restarted
        assert!(!sim.is_crashed(victim).unwrap());
        assert!(sim.service(victim).unwrap().allocation().value() >= 0.0);
    }

    #[test]
    fn crash_differs_from_pause_on_arrivals() {
        // Paused: queue keeps growing. Crashed: arrivals dropped.
        let victim = MicroserviceId::new(0);
        let run = |event: SimEvent| {
            let mut sim = small_sim(61);
            let mut events = crate::events::EventSchedule::new();
            events.at(0, event);
            sim.set_events(events);
            for _ in 0..5 {
                sim.step();
            }
            sim.service(victim).unwrap().received_total()
        };
        let paused = run(SimEvent::PauseService { ms: victim });
        let crashed = run(SimEvent::MsCrash { ms: victim });
        assert_eq!(crashed, 0, "crashed service accepts nothing");
        assert!(paused >= crashed);
    }

    #[test]
    fn sensor_dropout_window_toggles_observability() {
        use edge_common::indicator::Indicator;
        let mut sim = small_sim(62);
        let mut events = crate::events::EventSchedule::new();
        events
            .at(
                1,
                SimEvent::SensorDropout {
                    indicator: Indicator::Processing,
                },
            )
            .at(
                3,
                SimEvent::SensorRestore {
                    indicator: Indicator::Processing,
                },
            );
        sim.set_events(events);
        sim.step(); // round 0
        assert!(sim.observed_indicators().is_complete());
        sim.step(); // round 1: dropped
        assert!(!sim.observed_indicators().contains(Indicator::Processing));
        assert!(sim.observed_indicators().contains(Indicator::Waiting));
        sim.step(); // round 2: still dropped
        assert_eq!(sim.observed_indicators().count(), 2);
        sim.step(); // round 3: restored
        assert!(sim.observed_indicators().is_complete());
    }

    #[test]
    fn seller_default_event_is_engine_noop() {
        // The engine must pass market-layer events through without
        // touching simulation state.
        let mut plain = small_sim(63);
        plain.run_to_end();
        let mut faulty = small_sim(63);
        let mut events = crate::events::EventSchedule::new();
        events.at(
            2,
            SimEvent::SellerDefault {
                seller: MicroserviceId::new(1),
                fraction: 0.5,
            },
        );
        faulty.set_events(events);
        faulty.run_to_end();
        for m in 0..plain.num_services() {
            let ms = MicroserviceId::new(m);
            assert_eq!(
                plain.service(ms).unwrap().received_total(),
                faulty.service(ms).unwrap().received_total()
            );
            assert_eq!(
                plain.service(ms).unwrap().served_total(),
                faulty.service(ms).unwrap().served_total()
            );
        }
    }

    #[test]
    fn utilization_is_a_fraction() {
        let mut sim = small_sim(49);
        sim.run_to_end();
        let hub = sim.metrics();
        for t in 0..8 {
            for row in hub.at_round(Round::new(t)) {
                assert!((0.0..=1.0).contains(&row.utilization));
            }
        }
    }

    #[test]
    fn telemetry_emits_one_deterministic_event_per_round() {
        let collector = Arc::new(edge_telemetry::Collector::new());
        let mut sim = small_sim(7);
        sim.set_telemetry(collector.clone());
        let rounds = sim.run_to_end();
        let events = collector.events();
        assert_eq!(events.len(), rounds as usize);
        for (t, e) in events.iter().enumerate() {
            assert_eq!(e.name, "sim.round");
            assert_eq!(e.field("round").and_then(|v| v.as_f64()), Some(t as f64));
        }
        // Same trace, same schedule → byte-identical JSONL.
        let again = Arc::new(edge_telemetry::Collector::new());
        let mut rerun = small_sim(7);
        rerun.set_telemetry(again.clone());
        rerun.run_to_end();
        assert_eq!(collector.deterministic_jsonl(), again.deterministic_jsonl());
    }
}
