//! Simulator error type.

use edge_common::id::{EdgeCloudId, MicroserviceId};
use std::error::Error;
use std::fmt;

/// Errors raised by simulator operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// A microservice id does not exist in this simulation.
    UnknownMicroservice(MicroserviceId),
    /// A resource transfer was attempted between microservices hosted on
    /// different edge clouds (resources are local to a cloud).
    MismatchedClouds {
        /// Cloud hosting the source microservice.
        from: EdgeCloudId,
        /// Cloud hosting the destination microservice.
        to: EdgeCloudId,
    },
    /// The source of a transfer holds less than the requested amount.
    InsufficientAllocation(MicroserviceId),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownMicroservice(ms) => write!(f, "unknown microservice {ms}"),
            SimError::MismatchedClouds { from, to } => {
                write!(f, "cannot transfer resources between {from} and {to}")
            }
            SimError::InsufficientAllocation(ms) => {
                write!(f, "{ms} does not hold enough resources for the transfer")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_entities() {
        let e = SimError::MismatchedClouds {
            from: EdgeCloudId::new(0),
            to: EdgeCloudId::new(1),
        };
        assert!(e.to_string().contains("edge#0"));
        assert!(e.to_string().contains("edge#1"));
        assert!(SimError::UnknownMicroservice(MicroserviceId::new(7))
            .to_string()
            .contains("ms#7"));
    }
}
