//! Scripted disturbance events — failure injection for experiments.
//!
//! Edge clouds are not static: servers degrade, microservices crash and
//! restart. The mechanism must keep functioning when the supply side
//! shifts under it, so the simulator supports scheduling disturbances at
//! round boundaries:
//!
//! * [`SimEvent::CapacityChange`] — a cloud's capacity changes (e.g. a
//!   co-located server fails or returns);
//! * [`SimEvent::PauseService`] — a microservice stops processing (its
//!   allocation is zeroed and redistributed; its queue keeps growing);
//! * [`SimEvent::ResumeService`] — a paused microservice resumes.
//!
//! Events are applied by the engine at the *start* of their round,
//! before allocation.

use edge_common::id::{EdgeCloudId, MicroserviceId};
use edge_common::units::Resource;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A single scheduled disturbance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SimEvent {
    /// Replace a cloud's capacity with a new value.
    CapacityChange {
        /// Which cloud.
        cloud: EdgeCloudId,
        /// The new total capacity.
        capacity: Resource,
    },
    /// Stop a microservice from processing (crash / eviction).
    PauseService {
        /// Which microservice.
        ms: MicroserviceId,
    },
    /// Resume a paused microservice.
    ResumeService {
        /// Which microservice.
        ms: MicroserviceId,
    },
}

/// A round-indexed schedule of disturbances.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventSchedule {
    events: BTreeMap<u64, Vec<SimEvent>>,
}

impl EventSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an event at the start of the given round.
    pub fn at(&mut self, round: u64, event: SimEvent) -> &mut Self {
        self.events.entry(round).or_default().push(event);
        self
    }

    /// The events scheduled for a round (empty slice if none).
    pub fn for_round(&self, round: u64) -> &[SimEvent] {
        self.events.get(&round).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.values().map(Vec::len).sum()
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_collects_per_round() {
        let mut s = EventSchedule::new();
        s.at(
            2,
            SimEvent::PauseService {
                ms: MicroserviceId::new(1),
            },
        )
        .at(
            2,
            SimEvent::PauseService {
                ms: MicroserviceId::new(2),
            },
        )
        .at(
            5,
            SimEvent::ResumeService {
                ms: MicroserviceId::new(1),
            },
        );
        assert_eq!(s.for_round(2).len(), 2);
        assert_eq!(s.for_round(5).len(), 1);
        assert!(s.for_round(0).is_empty());
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_schedule() {
        let s = EventSchedule::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn serde_round_trip() {
        let mut s = EventSchedule::new();
        s.at(
            1,
            SimEvent::CapacityChange {
                cloud: EdgeCloudId::new(0),
                capacity: Resource::new(3.0).unwrap(),
            },
        );
        let json = serde_json::to_string(&s).unwrap();
        let back: EventSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
