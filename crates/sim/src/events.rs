//! Scripted disturbance events — failure injection for experiments.
//!
//! Edge clouds are not static: servers degrade, microservices crash and
//! restart, telemetry pipelines lose probes, and auction winners
//! sometimes fail to deliver what they committed. The mechanism must
//! keep functioning when the supply side shifts under it, so the
//! simulator supports scheduling disturbances at round boundaries:
//!
//! * [`SimEvent::CapacityChange`] — a cloud's capacity changes (e.g. a
//!   co-located server fails or returns);
//! * [`SimEvent::PauseService`] — a microservice stops processing (its
//!   allocation is zeroed and redistributed; its queue keeps growing);
//! * [`SimEvent::ResumeService`] — a paused microservice resumes;
//! * [`SimEvent::MsCrash`] / [`SimEvent::MsRestart`] — a microservice
//!   drops out entirely: allocation zeroed *and* its queue frozen
//!   (arrivals are dropped, unlike a pause);
//! * [`SimEvent::SensorDropout`] / [`SimEvent::SensorRestore`] — one of
//!   the three demand indicators goes missing for a window, degrading
//!   the §III estimator;
//! * [`SimEvent::SellerDefault`] — an auction winner delivers only a
//!   fraction of its committed resources. The engine ignores this event
//!   (delivery is a market-layer concern); the recovery pipeline in
//!   `edge-auction` consumes it.
//!
//! Events are applied by the engine at the *start* of their round,
//! before allocation. [`seeded_fault_schedule`] draws a whole fault plan
//! deterministically from a seed, so fault experiments reproduce
//! bit-for-bit.

use edge_common::id::{EdgeCloudId, MicroserviceId};
use edge_common::indicator::Indicator;
use edge_common::rng::derive_rng;
use edge_common::units::Resource;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A single scheduled disturbance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SimEvent {
    /// Replace a cloud's capacity with a new value.
    CapacityChange {
        /// Which cloud.
        cloud: EdgeCloudId,
        /// The new total capacity.
        capacity: Resource,
    },
    /// Stop a microservice from processing (soft eviction: its queue
    /// keeps accepting arrivals).
    PauseService {
        /// Which microservice.
        ms: MicroserviceId,
    },
    /// Resume a paused microservice.
    ResumeService {
        /// Which microservice.
        ms: MicroserviceId,
    },
    /// Crash a microservice: allocation zeroed and its queue frozen —
    /// arrivals targeting it are dropped until [`SimEvent::MsRestart`].
    MsCrash {
        /// Which microservice.
        ms: MicroserviceId,
    },
    /// Restart a crashed microservice.
    MsRestart {
        /// Which microservice.
        ms: MicroserviceId,
    },
    /// One demand indicator becomes unobservable (telemetry loss).
    SensorDropout {
        /// Which indicator goes dark.
        indicator: Indicator,
    },
    /// A dropped demand indicator becomes observable again.
    SensorRestore {
        /// Which indicator returns.
        indicator: Indicator,
    },
    /// An auction winner delivers only `fraction` of its committed
    /// resources this round. A no-op for the engine; consumed by the
    /// market-layer recovery policy.
    SellerDefault {
        /// The defaulting seller.
        seller: MicroserviceId,
        /// Fraction actually delivered, in `[0, 1)`.
        fraction: f64,
    },
}

/// A round-indexed schedule of disturbances.
///
/// Ordering semantics (relied on by the engine and tested below):
/// events scheduled for the same round fire in **insertion order**, and
/// a round with nothing scheduled yields an **empty slice** (never an
/// error or a missing-key panic).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventSchedule {
    events: BTreeMap<u64, Vec<SimEvent>>,
}

impl EventSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an event at the start of the given round.
    ///
    /// Multiple events added to the same round are applied in the order
    /// they were inserted, so e.g. a crash followed by a restart in one
    /// round leaves the service running.
    pub fn at(&mut self, round: u64, event: SimEvent) -> &mut Self {
        self.events.entry(round).or_default().push(event);
        self
    }

    /// The events scheduled for a round, in insertion order. A round
    /// with no events returns an empty slice.
    pub fn for_round(&self, round: u64) -> &[SimEvent] {
        self.events.get(&round).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.values().map(Vec::len).sum()
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Per-round fault probabilities for [`seeded_fault_schedule`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability per (round, service) that a winning seller defaults.
    pub default_probability: f64,
    /// Smallest delivered fraction a default can leave.
    pub min_delivered_fraction: f64,
    /// Largest delivered fraction a default can leave (exclusive of 1).
    pub max_delivered_fraction: f64,
    /// Probability per (round, service) that a crash window starts.
    pub crash_probability: f64,
    /// Crash duration in rounds.
    pub crash_length: u64,
    /// Probability per (round, indicator) that a dropout window starts.
    pub dropout_probability: f64,
    /// Dropout duration in rounds.
    pub dropout_length: u64,
}

impl Default for FaultRates {
    fn default() -> Self {
        FaultRates {
            default_probability: 0.1,
            min_delivered_fraction: 0.2,
            max_delivered_fraction: 0.8,
            crash_probability: 0.02,
            crash_length: 2,
            dropout_probability: 0.05,
            dropout_length: 2,
        }
    }
}

/// Draws a deterministic fault plan: seller defaults, crash windows,
/// and sensor dropouts over `rounds` rounds and `num_services`
/// microservices.
///
/// The draw order is fixed (rounds outer, services/indicators inner) and
/// the RNG derives from `seed` alone, so the same arguments always yield
/// the same schedule — fault experiments stay reproducible bit-for-bit.
/// Crash and dropout windows never overlap themselves: a new window
/// cannot start while the previous one is still open.
pub fn seeded_fault_schedule(
    seed: u64,
    rounds: u64,
    num_services: usize,
    rates: &FaultRates,
) -> EventSchedule {
    let mut rng = derive_rng(seed, "fault-plan");
    let mut schedule = EventSchedule::new();
    let mut crashed_until = vec![0u64; num_services];
    let mut dropped_until = [0u64; 3];
    for t in 0..rounds {
        for (s, crash_horizon) in crashed_until.iter_mut().enumerate() {
            let ms = MicroserviceId::new(s);
            if rng.gen::<f64>() < rates.default_probability {
                let span = (rates.max_delivered_fraction - rates.min_delivered_fraction).max(0.0);
                let fraction =
                    (rates.min_delivered_fraction + span * rng.gen::<f64>()).clamp(0.0, 1.0);
                schedule.at(
                    t,
                    SimEvent::SellerDefault {
                        seller: ms,
                        fraction,
                    },
                );
            }
            if t >= *crash_horizon && rng.gen::<f64>() < rates.crash_probability {
                let until = (t + rates.crash_length.max(1)).min(rounds);
                schedule.at(t, SimEvent::MsCrash { ms });
                if until < rounds {
                    schedule.at(until, SimEvent::MsRestart { ms });
                }
                *crash_horizon = until;
            }
        }
        for (i, indicator) in Indicator::ALL.into_iter().enumerate() {
            if t >= dropped_until[i] && rng.gen::<f64>() < rates.dropout_probability {
                let until = (t + rates.dropout_length.max(1)).min(rounds);
                schedule.at(t, SimEvent::SensorDropout { indicator });
                if until < rounds {
                    schedule.at(until, SimEvent::SensorRestore { indicator });
                }
                dropped_until[i] = until;
            }
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_collects_per_round() {
        let mut s = EventSchedule::new();
        s.at(
            2,
            SimEvent::PauseService {
                ms: MicroserviceId::new(1),
            },
        )
        .at(
            2,
            SimEvent::PauseService {
                ms: MicroserviceId::new(2),
            },
        )
        .at(
            5,
            SimEvent::ResumeService {
                ms: MicroserviceId::new(1),
            },
        );
        assert_eq!(s.for_round(2).len(), 2);
        assert_eq!(s.for_round(5).len(), 1);
        assert!(s.for_round(0).is_empty());
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_schedule() {
        let s = EventSchedule::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn same_round_events_fire_in_insertion_order() {
        // Crash-then-restart in one round must come back in exactly that
        // order: the engine applies them sequentially, so reversing them
        // would leave the service crashed instead of running.
        let ms = MicroserviceId::new(3);
        let mut s = EventSchedule::new();
        s.at(1, SimEvent::MsCrash { ms })
            .at(1, SimEvent::MsRestart { ms })
            .at(
                1,
                SimEvent::SensorDropout {
                    indicator: Indicator::Rate,
                },
            );
        let fired = s.for_round(1);
        assert_eq!(fired.len(), 3);
        assert_eq!(fired[0], SimEvent::MsCrash { ms });
        assert_eq!(fired[1], SimEvent::MsRestart { ms });
        assert_eq!(
            fired[2],
            SimEvent::SensorDropout {
                indicator: Indicator::Rate
            }
        );
    }

    #[test]
    fn for_round_on_empty_round_returns_empty_slice() {
        let mut s = EventSchedule::new();
        // Entirely empty schedule: every round is an empty slice.
        assert_eq!(s.for_round(0), &[] as &[SimEvent]);
        s.at(
            4,
            SimEvent::MsCrash {
                ms: MicroserviceId::new(0),
            },
        );
        // Rounds around a populated one are still empty slices.
        assert!(s.for_round(3).is_empty());
        assert!(s.for_round(5).is_empty());
        assert_eq!(s.for_round(4).len(), 1);
    }

    #[test]
    fn serde_round_trip() {
        let mut s = EventSchedule::new();
        s.at(
            1,
            SimEvent::CapacityChange {
                cloud: EdgeCloudId::new(0),
                capacity: Resource::new(3.0).unwrap(),
            },
        )
        .at(
            2,
            SimEvent::SellerDefault {
                seller: MicroserviceId::new(4),
                fraction: 0.5,
            },
        )
        .at(
            3,
            SimEvent::SensorDropout {
                indicator: Indicator::Processing,
            },
        );
        let json = serde_json::to_string(&s).unwrap();
        let back: EventSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn seeded_schedule_is_deterministic() {
        let rates = FaultRates {
            default_probability: 0.3,
            crash_probability: 0.1,
            dropout_probability: 0.2,
            ..FaultRates::default()
        };
        let a = seeded_fault_schedule(11, 20, 8, &rates);
        let b = seeded_fault_schedule(11, 20, 8, &rates);
        assert_eq!(a, b);
        let c = seeded_fault_schedule(12, 20, 8, &rates);
        assert_ne!(a, c, "different seeds should differ at these rates");
        assert!(!a.is_empty());
    }

    #[test]
    fn seeded_schedule_pairs_crashes_with_restarts() {
        let rates = FaultRates {
            crash_probability: 0.25,
            crash_length: 2,
            ..FaultRates::default()
        };
        let s = seeded_fault_schedule(5, 30, 6, &rates);
        let mut crashes = 0i64;
        let mut restarts = 0i64;
        for t in 0..30 {
            for e in s.for_round(t) {
                match e {
                    SimEvent::MsCrash { .. } => crashes += 1,
                    SimEvent::MsRestart { .. } => restarts += 1,
                    _ => {}
                }
            }
        }
        assert!(crashes > 0, "rate 0.25 over 180 draws should crash");
        // Every restart matches a crash; crashes may outnumber restarts
        // only by windows truncated at the horizon.
        assert!(restarts <= crashes);
    }

    #[test]
    fn zero_rates_yield_empty_schedule() {
        let rates = FaultRates {
            default_probability: 0.0,
            crash_probability: 0.0,
            dropout_probability: 0.0,
            ..FaultRates::default()
        };
        assert!(seeded_fault_schedule(1, 50, 10, &rates).is_empty());
    }

    #[test]
    fn default_fractions_stay_in_range() {
        let rates = FaultRates {
            default_probability: 1.0,
            ..FaultRates::default()
        };
        let s = seeded_fault_schedule(9, 10, 4, &rates);
        for t in 0..10 {
            for e in s.for_round(t) {
                if let SimEvent::SellerDefault { fraction, .. } = e {
                    assert!(
                        (rates.min_delivered_fraction..rates.max_delivered_fraction)
                            .contains(fraction),
                        "fraction {fraction} out of range"
                    );
                }
            }
        }
    }
}
