//! Round-based edge-cloud simulator.
//!
//! The paper's mechanism operates on observables produced by a running
//! edge system: which microservices hold spare resources, which are
//! starved, and the per-round waiting/processing/request-rate statistics
//! that feed the demand estimator (§III). This crate is that substrate:
//!
//! * [`cloud`] — edge clouds as capacity-bounded pools with placement;
//! * [`allocator`] — max-min fair sharing (§II's "fair sharing policy");
//! * [`microservice`] — request queues with resource-proportional
//!   processing;
//! * [`engine`] — the per-round loop tying arrivals, allocation,
//!   transfers (the auction's reallocation hook), and processing
//!   together;
//! * [`metrics`] — the shared per-round observables.
//!
//! # Examples
//!
//! ```
//! use edge_sim::engine::{SimConfig, Simulation};
//! use edge_workload::trace::{RequestTrace, TraceConfig};
//! use edge_common::rng::seeded_rng;
//!
//! let mut rng = seeded_rng(1);
//! let trace = RequestTrace::generate(TraceConfig::default(), &mut rng);
//! let mut sim = Simulation::new(trace, SimConfig::default());
//! let rounds = sim.run_to_end();
//! assert_eq!(rounds, 10);
//! assert_eq!(sim.metrics().num_rounds(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod allocator;
pub mod cloud;
pub mod engine;
pub mod error;
pub mod events;
pub mod live;
pub mod metrics;
pub mod microservice;
pub mod placement;
pub mod sla;

pub use allocator::fair_share;
pub use cloud::EdgeCloud;
pub use engine::{SimConfig, Simulation};
pub use error::SimError;
pub use events::{EventSchedule, SimEvent};
pub use metrics::{MetricsHub, MsMetrics};
pub use microservice::{ClassCounters, MicroserviceState};
pub use placement::Placement;
pub use sla::{SlaCounters, SlaPolicy, SlaTracker};
