//! Live metric instrumentation for the discrete-event simulator.
//!
//! Each [`crate::engine::Simulation::step`] reports the paper's three
//! demand indicators (§III: queue length, waiting/processing time,
//! incoming request rate) into the process-global
//! [`edge_telemetry::registry`] so `edge-market serve` can expose them
//! at `/metrics`. Recording is strictly reads of already-computed round
//! aggregates — it can never perturb the simulation.

use edge_telemetry::registry::global;
use edge_telemetry::{Counter, Gauge};
use std::sync::{Arc, OnceLock};

/// Registry handles for the sim families, looked up once per process.
#[derive(Debug)]
pub struct SimLive {
    rounds: Arc<Counter>,
    requests: Arc<Counter>,
    served: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    queued_work: Arc<Gauge>,
    mean_waiting: Arc<Gauge>,
    request_rate: Arc<Gauge>,
    mean_utilization: Arc<Gauge>,
    offline: Arc<Gauge>,
}

impl SimLive {
    /// The process-global handle set (registering on first use).
    pub fn get() -> &'static SimLive {
        static LIVE: OnceLock<SimLive> = OnceLock::new();
        LIVE.get_or_init(|| {
            let r = global();
            SimLive {
                rounds: r.counter("edge_sim_rounds_total", "Simulation rounds stepped", &[]),
                requests: r.counter(
                    "edge_sim_requests_total",
                    "Requests that arrived at a live service",
                    &[],
                ),
                served: r.counter(
                    "edge_sim_served_total",
                    "Requests completed by services",
                    &[],
                ),
                queue_depth: r.gauge(
                    "edge_sim_queue_depth",
                    "Requests queued across all services after the last round",
                    &[],
                ),
                queued_work: r.gauge(
                    "edge_sim_queued_work",
                    "Resource units of queued work after the last round",
                    &[],
                ),
                mean_waiting: r.gauge(
                    "edge_sim_mean_waiting_rounds",
                    "Mean rounds a served request waited, averaged over services",
                    &[],
                ),
                request_rate: r.gauge(
                    "edge_sim_request_rate",
                    "Requests that arrived in the last round",
                    &[],
                ),
                mean_utilization: r.gauge(
                    "edge_sim_mean_utilization",
                    "Mean allocation utilization over services in the last round",
                    &[],
                ),
                offline: r.gauge(
                    "edge_sim_offline_services",
                    "Services paused or crashed in the last round",
                    &[],
                ),
            }
        })
    }

    /// Records one stepped round's aggregates.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_round(
        &self,
        arrivals: u64,
        completions: u64,
        queued: u64,
        queued_work: f64,
        mean_waiting: f64,
        mean_utilization: f64,
        offline: usize,
    ) {
        self.rounds.incr();
        self.requests.add(arrivals);
        self.served.add(completions);
        self.queue_depth.set(queued as f64);
        self.queued_work.set(queued_work);
        self.mean_waiting.set(mean_waiting);
        self.request_rate.set(arrivals as f64);
        self.mean_utilization.set(mean_utilization);
        self.offline.set(offline as f64);
    }
}

/// Registers every sim family (at zero) so a first `/metrics` scrape
/// shows the full catalog before any round has run.
pub fn preregister() {
    let _ = SimLive::get();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preregister_exposes_sim_families() {
        preregister();
        let text = global().render();
        for family in [
            "edge_sim_rounds_total",
            "edge_sim_queue_depth",
            "edge_sim_request_rate",
            "edge_sim_mean_waiting_rounds",
        ] {
            assert!(text.contains(family), "missing family {family}");
        }
    }

    #[test]
    fn record_round_accumulates() {
        let live = SimLive::get();
        let before = live.requests.get();
        live.record_round(5, 3, 7, 2.5, 1.5, 0.8, 1);
        assert_eq!(live.requests.get(), before + 5);
        assert_eq!(live.queue_depth.get(), 7.0);
        assert_eq!(live.offline.get(), 1.0);
    }
}
