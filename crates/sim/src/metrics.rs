//! Per-round metrics — the observables the demand estimator consumes.
//!
//! §III of the paper characterizes a microservice's demand by three
//! factors derived from runtime observation: waiting time (`θ_i/π_i`),
//! processing rate surplus (`ς_i − ϖ_i`), and request rate (allocation
//! share, execution rate `𝕃_i^t`, and neighbor density `𝒱(n̄)`). The
//! engine emits one [`MsMetrics`] per microservice per round with all of
//! those ingredients; [`MetricsHub`] stores the history behind a
//! `parking_lot::RwLock` so experiment harnesses can read concurrently
//! while the simulation advances.

use edge_common::id::{MicroserviceId, Round};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One microservice's observables for one round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MsMetrics {
    /// Which microservice.
    pub ms: MicroserviceId,
    /// Which round.
    pub round: Round,
    /// Resource allocation held this round (`a_i^t`).
    pub allocation: f64,
    /// Largest allocation held by any co-located microservice this round
    /// (`a_max`).
    pub max_allocation: f64,
    /// Lifetime requests received (`π_i`).
    pub received_total: u64,
    /// Lifetime requests served (`θ_i`).
    pub served_total: u64,
    /// Requests that arrived this round.
    pub received_round: u64,
    /// Requests completed this round.
    pub served_round: u64,
    /// Requests still queued after this round.
    pub queue_len: usize,
    /// Work still queued after this round, in resource-rounds.
    pub queued_work: f64,
    /// Lifetime work arrived (used for the desired processing rate `ς_i`).
    pub work_arrived_total: f64,
    /// Lifetime work completed (used for the achieved rate `ϖ_i`).
    pub work_done_total: f64,
    /// Fraction of this round's allocation actually used (`𝕃_i^t`,
    /// clamped to `[0, 1]`).
    pub utilization: f64,
    /// Number of co-located microservices with non-empty queues
    /// (`𝒱(n̄)`, the "density of neighbouring microservices served").
    pub neighbors_active: usize,
    /// Mean waiting time per served request so far, in rounds.
    pub mean_waiting: f64,
}

/// Thread-safe store of per-round metrics.
#[derive(Debug, Default)]
pub struct MetricsHub {
    rounds: RwLock<Vec<Vec<MsMetrics>>>,
}

impl MetricsHub {
    /// Creates an empty hub behind an `Arc` for sharing with readers.
    pub fn new() -> Arc<Self> {
        Arc::new(MetricsHub::default())
    }

    /// Appends one round of metrics.
    pub fn record_round(&self, batch: Vec<MsMetrics>) {
        self.rounds.write().push(batch);
    }

    /// Number of recorded rounds.
    pub fn num_rounds(&self) -> usize {
        self.rounds.read().len()
    }

    /// A copy of the latest round's metrics (empty before the first
    /// round).
    pub fn latest(&self) -> Vec<MsMetrics> {
        self.rounds.read().last().cloned().unwrap_or_default()
    }

    /// A copy of one round's metrics.
    pub fn at_round(&self, round: Round) -> Vec<MsMetrics> {
        self.rounds
            .read()
            .get(round.index() as usize)
            .cloned()
            .unwrap_or_default()
    }

    /// The metric series of one microservice across all recorded rounds.
    pub fn series_for(&self, ms: MicroserviceId) -> Vec<MsMetrics> {
        self.rounds
            .read()
            .iter()
            .filter_map(|batch| batch.iter().find(|m| m.ms == ms).cloned())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ms: usize, round: u64) -> MsMetrics {
        MsMetrics {
            ms: MicroserviceId::new(ms),
            round: Round::new(round),
            allocation: 1.0,
            max_allocation: 2.0,
            received_total: 10,
            served_total: 8,
            received_round: 2,
            served_round: 1,
            queue_len: 2,
            queued_work: 0.5,
            work_arrived_total: 4.0,
            work_done_total: 3.5,
            utilization: 0.8,
            neighbors_active: 3,
            mean_waiting: 1.5,
        }
    }

    #[test]
    fn records_and_reads_rounds() {
        let hub = MetricsHub::new();
        hub.record_round(vec![sample(0, 0), sample(1, 0)]);
        hub.record_round(vec![sample(0, 1)]);
        assert_eq!(hub.num_rounds(), 2);
        assert_eq!(hub.latest().len(), 1);
        assert_eq!(hub.at_round(Round::new(0)).len(), 2);
        assert!(hub.at_round(Round::new(5)).is_empty());
    }

    #[test]
    fn series_extracts_one_microservice() {
        let hub = MetricsHub::new();
        hub.record_round(vec![sample(0, 0), sample(1, 0)]);
        hub.record_round(vec![sample(0, 1), sample(1, 1)]);
        let series = hub.series_for(MicroserviceId::new(1));
        assert_eq!(series.len(), 2);
        assert!(series.iter().all(|m| m.ms == MicroserviceId::new(1)));
    }

    #[test]
    fn concurrent_readers_do_not_block_each_other() {
        let hub = MetricsHub::new();
        hub.record_round(vec![sample(0, 0)]);
        let a = hub.clone();
        let b = hub.clone();
        let t = std::thread::spawn(move || a.latest().len());
        let n = b.latest().len();
        assert_eq!(t.join().unwrap(), n);
    }

    #[test]
    fn empty_hub_yields_empty_views() {
        let hub = MetricsHub::new();
        assert_eq!(hub.num_rounds(), 0);
        assert!(hub.latest().is_empty());
        assert!(hub.series_for(MicroserviceId::new(0)).is_empty());
    }
}
