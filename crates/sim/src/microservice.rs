//! Per-microservice runtime state: allocation, request queue, counters.

use edge_common::id::{EdgeCloudId, MicroserviceId, Round};
use edge_common::units::Resource;
use edge_workload::request::{Request, RequestClass};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Lifetime counters for one latency class — makes the paper's
/// "higher priority is given to delay-sensitive microservices" claim
/// measurable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCounters {
    /// Requests of this class received.
    pub received: u64,
    /// Requests of this class completed.
    pub served: u64,
    /// Sum of waiting rounds of completed requests of this class.
    pub waiting_rounds: u64,
}

impl ClassCounters {
    /// Mean waiting time per served request of this class, in rounds.
    pub fn mean_waiting(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.waiting_rounds as f64 / self.served as f64
        }
    }
}

/// A request being processed, with the work it still needs.
#[derive(Debug, Clone, PartialEq)]
pub struct InFlight {
    /// The original request.
    pub request: Request,
    /// Work remaining, in resource-rounds.
    pub remaining: f64,
}

/// Outcome of processing one round.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundOutcome {
    /// Requests that completed this round.
    pub completed: Vec<Request>,
    /// Total work processed this round, in resource-rounds.
    pub work_processed: f64,
    /// Sum of waiting times (completion round − arrival round, in rounds)
    /// of the requests completed this round.
    pub waiting_rounds: u64,
}

/// Runtime state of one microservice in the simulator.
#[derive(Debug, Clone)]
pub struct MicroserviceState {
    id: MicroserviceId,
    cloud: EdgeCloudId,
    allocation: Resource,
    queue: VecDeque<InFlight>,
    received_total: u64,
    served_total: u64,
    work_arrived_total: f64,
    work_done_total: f64,
    waiting_rounds_total: u64,
    by_class: [ClassCounters; 2],
}

fn class_slot(class: RequestClass) -> usize {
    class.priority() as usize
}

impl MicroserviceState {
    /// Creates an idle microservice hosted on the given cloud.
    pub fn new(id: MicroserviceId, cloud: EdgeCloudId) -> Self {
        MicroserviceState {
            id,
            cloud,
            allocation: Resource::ZERO,
            queue: VecDeque::new(),
            received_total: 0,
            served_total: 0,
            work_arrived_total: 0.0,
            work_done_total: 0.0,
            waiting_rounds_total: 0,
            by_class: [ClassCounters::default(); 2],
        }
    }

    /// This microservice's id.
    pub fn id(&self) -> MicroserviceId {
        self.id
    }

    /// The edge cloud hosting this microservice.
    pub fn cloud(&self) -> EdgeCloudId {
        self.cloud
    }

    /// Current resource allocation.
    pub fn allocation(&self) -> Resource {
        self.allocation
    }

    /// Overwrites the allocation (the engine calls this after fair
    /// sharing and transfers).
    pub fn set_allocation(&mut self, allocation: Resource) {
        self.allocation = allocation;
    }

    /// Enqueues an arriving request.
    pub fn enqueue(&mut self, request: Request) {
        self.received_total += 1;
        self.work_arrived_total += request.work;
        self.by_class[class_slot(request.class)].received += 1;
        self.queue.push_back(InFlight {
            remaining: request.work,
            request,
        });
    }

    /// Processes the queue for one round with the current allocation.
    ///
    /// The allocation is a work budget (resource-rounds): requests are
    /// served in queue order; a request completes when its remaining work
    /// reaches zero and contributes its waiting time to the outcome.
    pub fn process_round(&mut self, now: Round) -> RoundOutcome {
        let mut budget = self.allocation.value();
        let mut outcome = RoundOutcome::default();
        while budget > 1e-12 {
            let Some(front) = self.queue.front_mut() else {
                break;
            };
            let spent = front.remaining.min(budget);
            front.remaining -= spent;
            budget -= spent;
            outcome.work_processed += spent;
            if front.remaining <= 1e-12 {
                let done = self.queue.pop_front().expect("front exists");
                let waited = now.index().saturating_sub(done.request.arrival.index());
                outcome.waiting_rounds += waited;
                let slot = &mut self.by_class[class_slot(done.request.class)];
                slot.served += 1;
                slot.waiting_rounds += waited;
                outcome.completed.push(done.request);
            }
        }
        self.served_total += outcome.completed.len() as u64;
        self.work_done_total += outcome.work_processed;
        self.waiting_rounds_total += outcome.waiting_rounds;
        outcome
    }

    /// Total queued work still pending, in resource-rounds — the demand
    /// proxy the fair-share allocator sees.
    pub fn queued_work(&self) -> Resource {
        Resource::new_unchecked(self.queue.iter().map(|f| f.remaining).sum())
    }

    /// Number of requests waiting or in service.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Requests received over the lifetime (the paper's `π_i`).
    pub fn received_total(&self) -> u64 {
        self.received_total
    }

    /// Requests served over the lifetime (the paper's `θ_i`).
    pub fn served_total(&self) -> u64 {
        self.served_total
    }

    /// Total work that has arrived, in resource-rounds.
    pub fn work_arrived_total(&self) -> f64 {
        self.work_arrived_total
    }

    /// Total work completed, in resource-rounds.
    pub fn work_done_total(&self) -> f64 {
        self.work_done_total
    }

    /// Sum of waiting times of all completed requests, in rounds.
    pub fn waiting_rounds_total(&self) -> u64 {
        self.waiting_rounds_total
    }

    /// Mean waiting time per served request, in rounds (0 when nothing
    /// has been served yet).
    pub fn mean_waiting(&self) -> f64 {
        if self.served_total == 0 {
            0.0
        } else {
            self.waiting_rounds_total as f64 / self.served_total as f64
        }
    }

    /// Lifetime counters for one latency class.
    pub fn class_counters(&self, class: RequestClass) -> ClassCounters {
        self.by_class[class_slot(class)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_common::id::UserId;
    use edge_workload::request::RequestClass;

    fn req(work: f64, arrival: u64) -> Request {
        Request::new(
            UserId::new(0),
            MicroserviceId::new(0),
            RequestClass::DelaySensitive,
            Round::new(arrival),
            work,
        )
    }

    fn ms() -> MicroserviceState {
        MicroserviceState::new(MicroserviceId::new(0), EdgeCloudId::new(0))
    }

    #[test]
    fn processes_within_budget() {
        let mut m = ms();
        m.set_allocation(Resource::new(1.0).unwrap());
        m.enqueue(req(0.6, 0));
        m.enqueue(req(0.6, 0));
        let out = m.process_round(Round::new(0));
        // Budget 1.0: first request (0.6) completes, second gets 0.4 of
        // its 0.6.
        assert_eq!(out.completed.len(), 1);
        assert!((out.work_processed - 1.0).abs() < 1e-9);
        assert_eq!(m.queue_len(), 1);
        assert!((m.queued_work().value() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn completes_partial_work_next_round() {
        let mut m = ms();
        m.set_allocation(Resource::new(1.0).unwrap());
        m.enqueue(req(1.5, 0));
        let out0 = m.process_round(Round::new(0));
        assert!(out0.completed.is_empty());
        let out1 = m.process_round(Round::new(1));
        assert_eq!(out1.completed.len(), 1);
        assert_eq!(out1.waiting_rounds, 1);
        assert_eq!(m.served_total(), 1);
    }

    #[test]
    fn zero_allocation_starves_the_queue() {
        let mut m = ms();
        m.enqueue(req(0.1, 0));
        let out = m.process_round(Round::new(0));
        assert!(out.completed.is_empty());
        assert_eq!(out.work_processed, 0.0);
        assert_eq!(m.queue_len(), 1);
    }

    #[test]
    fn counters_accumulate() {
        let mut m = ms();
        m.set_allocation(Resource::new(10.0).unwrap());
        for i in 0..5 {
            m.enqueue(req(0.5, i));
        }
        assert_eq!(m.received_total(), 5);
        assert!((m.work_arrived_total() - 2.5).abs() < 1e-9);
        let out = m.process_round(Round::new(4));
        assert_eq!(out.completed.len(), 5);
        assert_eq!(m.served_total(), 5);
        assert!((m.work_done_total() - 2.5).abs() < 1e-9);
        // Waiting: arrivals at rounds 0..4 completing at round 4.
        assert_eq!(m.waiting_rounds_total(), 4 + 3 + 2 + 1);
        assert!((m.mean_waiting() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn work_is_conserved() {
        let mut m = ms();
        m.set_allocation(Resource::new(0.7).unwrap());
        m.enqueue(req(1.0, 0));
        m.enqueue(req(1.0, 0));
        let mut done = 0.0;
        for t in 0..5 {
            done += m.process_round(Round::new(t)).work_processed;
        }
        assert!((done + m.queued_work().value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mean_waiting_zero_before_first_completion() {
        let m = ms();
        assert_eq!(m.mean_waiting(), 0.0);
    }

    #[test]
    fn class_counters_split_by_class() {
        let mut m = ms();
        m.set_allocation(Resource::new(10.0).unwrap());
        m.enqueue(req(0.5, 0)); // delay-sensitive helper
        m.enqueue(Request::new(
            UserId::new(1),
            MicroserviceId::new(0),
            RequestClass::DelayTolerant,
            Round::new(0),
            0.5,
        ));
        m.process_round(Round::new(2));
        let s = m.class_counters(RequestClass::DelaySensitive);
        let t = m.class_counters(RequestClass::DelayTolerant);
        assert_eq!((s.received, s.served, s.waiting_rounds), (1, 1, 2));
        assert_eq!((t.received, t.served, t.waiting_rounds), (1, 1, 2));
        assert_eq!(s.mean_waiting(), 2.0);
    }

    #[test]
    fn class_counters_default_is_zero() {
        let c = ClassCounters::default();
        assert_eq!(c.mean_waiting(), 0.0);
        assert_eq!(c.received, 0);
    }
}
