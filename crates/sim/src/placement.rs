//! Microservice-to-cloud placement strategies.
//!
//! The paper "randomly deploys 25–75 microservices on different edge
//! clouds" (§V-A). Placement changes which microservices can trade with
//! each other (resources are cloud-local), so the simulator supports
//! several strategies:
//!
//! * [`Placement::RoundRobin`] — balanced and deterministic (the
//!   default);
//! * [`Placement::Random`] — the paper's literal wording, seeded;
//! * [`Placement::LeastLoaded`] — each microservice joins the cloud with
//!   the fewest members so far (equivalent to round-robin on equal
//!   capacities, but adapts when capacities differ);
//! * [`Placement::Packed`] — fill one cloud before the next (the
//!   adversarial case for trading: markets are as small as possible at
//!   the tail).

use crate::cloud::EdgeCloud;
use edge_common::id::{EdgeCloudId, MicroserviceId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A placement strategy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// `ms i → cloud (i mod L)`.
    #[default]
    RoundRobin,
    /// Uniformly random cloud per microservice (seeded).
    Random {
        /// RNG seed for the assignment.
        seed: u64,
    },
    /// Join the cloud with the fewest members, ties to the lower id.
    LeastLoaded,
    /// Fill clouds to `per_cloud` members in id order.
    Packed {
        /// Members per cloud before moving on.
        per_cloud: usize,
    },
}

/// Assigns `n` microservices to `clouds` per the strategy, registering
/// each on its cloud, and returns each microservice's cloud.
///
/// # Panics
///
/// Panics if `clouds` is empty or a `Packed` strategy has
/// `per_cloud == 0`.
pub fn place(clouds: &mut [EdgeCloud], n: usize, strategy: Placement) -> Vec<EdgeCloudId> {
    assert!(
        !clouds.is_empty(),
        "need at least one cloud to place microservices"
    );
    let l = clouds.len();
    let choose: Vec<usize> = match strategy {
        Placement::RoundRobin => (0..n).map(|m| m % l).collect(),
        Placement::Random { seed } => {
            let mut rng = edge_common::rng::derive_rng(seed, "placement");
            (0..n).map(|_| rng.gen_range(0..l)).collect()
        }
        Placement::LeastLoaded => {
            let mut counts = vec![0usize; l];
            (0..n)
                .map(|_| {
                    let c = counts
                        .iter()
                        .enumerate()
                        .min_by_key(|&(i, &cnt)| (cnt, i))
                        .map(|(i, _)| i)
                        .expect("clouds nonempty");
                    counts[c] += 1;
                    c
                })
                .collect()
        }
        Placement::Packed { per_cloud } => {
            assert!(per_cloud > 0, "packed placement needs per_cloud > 0");
            (0..n).map(|m| (m / per_cloud).min(l - 1)).collect()
        }
    };
    choose
        .into_iter()
        .enumerate()
        .map(|(m, c)| {
            clouds[c].host(MicroserviceId::new(m));
            clouds[c].id()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_common::units::Resource;

    fn clouds(l: usize) -> Vec<EdgeCloud> {
        (0..l)
            .map(|i| EdgeCloud::new(EdgeCloudId::new(i), Resource::new(10.0).unwrap()))
            .collect()
    }

    #[test]
    fn round_robin_balances() {
        let mut cs = clouds(3);
        let placement = place(&mut cs, 8, Placement::RoundRobin);
        let counts: Vec<usize> = cs.iter().map(|c| c.members().len()).collect();
        assert_eq!(counts, vec![3, 3, 2]);
        assert_eq!(placement[3], EdgeCloudId::new(0));
    }

    #[test]
    fn random_is_seed_deterministic_and_total() {
        let mut a = clouds(4);
        let mut b = clouds(4);
        let pa = place(&mut a, 20, Placement::Random { seed: 9 });
        let pb = place(&mut b, 20, Placement::Random { seed: 9 });
        assert_eq!(pa, pb);
        let total: usize = a.iter().map(|c| c.members().len()).sum();
        assert_eq!(total, 20);
        let mut c = clouds(4);
        let pc = place(&mut c, 20, Placement::Random { seed: 10 });
        assert_ne!(pa, pc, "different seeds should differ");
    }

    #[test]
    fn least_loaded_matches_round_robin_counts() {
        let mut cs = clouds(3);
        place(&mut cs, 7, Placement::LeastLoaded);
        let mut counts: Vec<usize> = cs.iter().map(|c| c.members().len()).collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![2, 2, 3]);
    }

    #[test]
    fn packed_fills_in_order() {
        let mut cs = clouds(3);
        let placement = place(&mut cs, 7, Placement::Packed { per_cloud: 3 });
        assert_eq!(placement[0], EdgeCloudId::new(0));
        assert_eq!(placement[2], EdgeCloudId::new(0));
        assert_eq!(placement[3], EdgeCloudId::new(1));
        assert_eq!(placement[6], EdgeCloudId::new(2));
    }

    #[test]
    fn packed_overflow_lands_on_last_cloud() {
        let mut cs = clouds(2);
        let placement = place(&mut cs, 6, Placement::Packed { per_cloud: 2 });
        // Clouds 0 and 1 take 2 each; the overflow (4 and 5) stays on
        // the last cloud.
        assert_eq!(placement[4], EdgeCloudId::new(1));
        assert_eq!(placement[5], EdgeCloudId::new(1));
        assert_eq!(cs[1].members().len(), 4);
    }

    #[test]
    #[should_panic(expected = "per_cloud > 0")]
    fn packed_rejects_zero() {
        let mut cs = clouds(1);
        place(&mut cs, 1, Placement::Packed { per_cloud: 0 });
    }

    #[test]
    #[should_panic(expected = "at least one cloud")]
    fn empty_clouds_rejected() {
        place(&mut [], 1, Placement::RoundRobin);
    }
}
