//! Service-level accounting.
//!
//! The paper's motivation is economic ("failing to meet the resource
//! demands may result in tenant dissatisfaction and eventually revenue
//! loss", §I). This module makes that measurable: a per-class deadline
//! policy plus a tracker that classifies every completed request as
//! on-time or late, so experiments can report *SLA violation rates*
//! with and without the market.

use edge_common::id::Round;
use edge_workload::request::{Request, RequestClass};
use serde::{Deserialize, Serialize};

/// Maximum acceptable waiting time (in rounds) per latency class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlaPolicy {
    /// Deadline for delay-sensitive requests.
    pub sensitive_deadline: u64,
    /// Deadline for delay-tolerant requests.
    pub tolerant_deadline: u64,
}

impl Default for SlaPolicy {
    /// Sensitive traffic must finish within 1 round; tolerant within 4.
    fn default() -> Self {
        SlaPolicy {
            sensitive_deadline: 1,
            tolerant_deadline: 4,
        }
    }
}

impl SlaPolicy {
    /// The deadline applying to a class.
    pub fn deadline_for(&self, class: RequestClass) -> u64 {
        match class {
            RequestClass::DelaySensitive => self.sensitive_deadline,
            RequestClass::DelayTolerant => self.tolerant_deadline,
        }
    }
}

/// Per-class tallies of on-time vs late completions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlaCounters {
    /// Completions within the deadline.
    pub on_time: u64,
    /// Completions past the deadline.
    pub late: u64,
}

impl SlaCounters {
    /// Fraction of completions that violated the deadline (0 when
    /// nothing completed).
    pub fn violation_rate(&self) -> f64 {
        let total = self.on_time + self.late;
        if total == 0 {
            0.0
        } else {
            self.late as f64 / total as f64
        }
    }
}

/// Classifies completions against a policy.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlaTracker {
    policy: SlaPolicy,
    sensitive: SlaCounters,
    tolerant: SlaCounters,
}

impl SlaTracker {
    /// Creates a tracker with the given policy.
    pub fn new(policy: SlaPolicy) -> Self {
        SlaTracker {
            policy,
            sensitive: SlaCounters::default(),
            tolerant: SlaCounters::default(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> SlaPolicy {
        self.policy
    }

    /// Records one completed request.
    pub fn record(&mut self, request: &Request, completed_at: Round) {
        let waited = completed_at.index().saturating_sub(request.arrival.index());
        let deadline = self.policy.deadline_for(request.class);
        let slot = match request.class {
            RequestClass::DelaySensitive => &mut self.sensitive,
            RequestClass::DelayTolerant => &mut self.tolerant,
        };
        if waited <= deadline {
            slot.on_time += 1;
        } else {
            slot.late += 1;
        }
    }

    /// Records a whole batch of completions from one round.
    pub fn record_batch(&mut self, completed: &[Request], completed_at: Round) {
        for r in completed {
            self.record(r, completed_at);
        }
    }

    /// Counters for a class.
    pub fn counters(&self, class: RequestClass) -> SlaCounters {
        match class {
            RequestClass::DelaySensitive => self.sensitive,
            RequestClass::DelayTolerant => self.tolerant,
        }
    }

    /// Overall violation rate across classes.
    pub fn overall_violation_rate(&self) -> f64 {
        let total = SlaCounters {
            on_time: self.sensitive.on_time + self.tolerant.on_time,
            late: self.sensitive.late + self.tolerant.late,
        };
        total.violation_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_common::id::{MicroserviceId, UserId};

    fn req(class: RequestClass, arrival: u64) -> Request {
        Request::new(
            UserId::new(0),
            MicroserviceId::new(0),
            class,
            Round::new(arrival),
            0.5,
        )
    }

    #[test]
    fn default_policy_orders_classes() {
        let p = SlaPolicy::default();
        assert!(
            p.deadline_for(RequestClass::DelaySensitive)
                < p.deadline_for(RequestClass::DelayTolerant)
        );
    }

    #[test]
    fn classifies_on_time_and_late() {
        let mut t = SlaTracker::new(SlaPolicy::default());
        // Sensitive: deadline 1 round.
        t.record(&req(RequestClass::DelaySensitive, 0), Round::new(1)); // on time
        t.record(&req(RequestClass::DelaySensitive, 0), Round::new(2)); // late
                                                                        // Tolerant: deadline 4 rounds.
        t.record(&req(RequestClass::DelayTolerant, 0), Round::new(4)); // on time
        t.record(&req(RequestClass::DelayTolerant, 0), Round::new(9)); // late
        let s = t.counters(RequestClass::DelaySensitive);
        let d = t.counters(RequestClass::DelayTolerant);
        assert_eq!((s.on_time, s.late), (1, 1));
        assert_eq!((d.on_time, d.late), (1, 1));
        assert!((t.overall_violation_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn batch_recording() {
        let mut t = SlaTracker::new(SlaPolicy::default());
        let batch = vec![
            req(RequestClass::DelaySensitive, 3),
            req(RequestClass::DelayTolerant, 0),
        ];
        t.record_batch(&batch, Round::new(4));
        assert_eq!(t.counters(RequestClass::DelaySensitive).on_time, 1);
        assert_eq!(t.counters(RequestClass::DelayTolerant).on_time, 1);
    }

    #[test]
    fn empty_tracker_has_zero_rate() {
        let t = SlaTracker::new(SlaPolicy::default());
        assert_eq!(t.overall_violation_rate(), 0.0);
        assert_eq!(
            t.counters(RequestClass::DelaySensitive).violation_rate(),
            0.0
        );
    }

    #[test]
    fn serde_round_trip() {
        let mut t = SlaTracker::new(SlaPolicy::default());
        t.record(&req(RequestClass::DelaySensitive, 0), Round::new(5));
        let json = serde_json::to_string(&t).unwrap();
        let back: SlaTracker = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
