//! The thread-safe [`Collector`] and the sinks that feed it.
//!
//! A collector stores two sections:
//!
//! * the **deterministic section** — sequence-numbered [`Event`]s with
//!   no wall-clock, PID, or thread-identity fields. Two runs of the same
//!   workload export byte-identical deterministic sections regardless of
//!   the machine or the worker-pool size; CI diffs them directly.
//! * the **profile section** — monotonic timings and other
//!   run-environment measurements, appended after the deterministic
//!   lines and tagged `"section":"profile"` so tooling (and the
//!   determinism regression) can strip them with a line filter.

use crate::event::{Event, Level};
use crate::value::{write_json_string, Value};
use std::sync::Mutex;

/// Where instrumented code sends structured events.
///
/// The auction mechanisms accept `&dyn Sink` (wrapped in a
/// [`Trace`](crate::Trace)) rather than a concrete collector, so tests
/// and tools can interpose — e.g. [`Scoped`] stamps a constant field
/// (such as the round index) onto every event passing through.
pub trait Sink: Sync {
    /// Records one event.
    fn emit(&self, level: Level, name: &'static str, fields: Vec<(&'static str, Value)>);

    /// Records a profile-section entry (timings, engine diagnostics) —
    /// data excluded from the determinism contract. Default: dropped,
    /// for sinks without a profile section.
    fn emit_profile(&self, name: &'static str, fields: Vec<(&'static str, Value)>) {
        let _ = (name, fields);
    }
}

#[derive(Debug, Default)]
struct Inner {
    events: Vec<Event>,
    span_stack: Vec<&'static str>,
    profile: Vec<ProfileEntry>,
}

/// One profile-section record (explicitly non-deterministic).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEntry {
    /// Record name (e.g. `sweep.profile`).
    pub name: &'static str,
    /// Key–value payload.
    pub fields: Vec<(&'static str, Value)>,
}

/// A thread-safe in-memory event store with JSONL export.
#[derive(Debug, Default)]
pub struct Collector {
    inner: Mutex<Inner>,
}

impl Collector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// Opens a span: emits a `span.enter` event, pushes the name onto
    /// the span path, and returns a guard that emits `span.exit` and
    /// pops on drop.
    pub fn span(&self, name: &'static str, fields: Vec<(&'static str, Value)>) -> SpanGuard<'_> {
        self.emit(Level::Debug, "span.enter", {
            let mut f = vec![("name", Value::from(name))];
            f.extend(fields);
            f
        });
        self.inner
            .lock()
            .expect("collector lock")
            .span_stack
            .push(name);
        SpanGuard { collector: self }
    }

    /// Records a profile-section entry (timings, environment). Excluded
    /// from the deterministic export.
    pub fn record_profile(&self, name: &'static str, fields: Vec<(&'static str, Value)>) {
        self.inner
            .lock()
            .expect("collector lock")
            .profile
            .push(ProfileEntry { name, fields });
    }

    /// Number of deterministic events recorded.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("collector lock").events.len()
    }

    /// `true` when no deterministic event was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the deterministic events.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().expect("collector lock").events.clone()
    }

    /// A copy of the profile-section entries.
    pub fn profile_entries(&self) -> Vec<ProfileEntry> {
        self.inner.lock().expect("collector lock").profile.clone()
    }

    /// The deterministic section as JSONL (one event per line).
    pub fn deterministic_jsonl(&self) -> String {
        let inner = self.inner.lock().expect("collector lock");
        let mut out = String::new();
        for e in &inner.events {
            e.write_jsonl(&mut out);
            out.push('\n');
        }
        out
    }

    /// The full export: deterministic lines, then profile lines tagged
    /// `"section":"profile"`.
    pub fn to_jsonl(&self) -> String {
        let mut out = self.deterministic_jsonl();
        let inner = self.inner.lock().expect("collector lock");
        for p in &inner.profile {
            out.push_str("{\"section\":\"profile\",\"name\":");
            write_json_string(p.name, &mut out);
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in p.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(k, &mut out);
                out.push(':');
                v.write_json(&mut out);
            }
            out.push_str("}}\n");
        }
        out
    }
}

impl Sink for Collector {
    fn emit(&self, level: Level, name: &'static str, fields: Vec<(&'static str, Value)>) {
        let mut inner = self.inner.lock().expect("collector lock");
        let seq = inner.events.len() as u64;
        let span = inner.span_stack.join(".");
        inner.events.push(Event {
            seq,
            level,
            name,
            span,
            fields,
        });
    }

    fn emit_profile(&self, name: &'static str, fields: Vec<(&'static str, Value)>) {
        self.record_profile(name, fields);
    }
}

/// RAII span handle returned by [`Collector::span`].
#[derive(Debug)]
pub struct SpanGuard<'a> {
    collector: &'a Collector,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let name = self
            .collector
            .inner
            .lock()
            .expect("collector lock")
            .span_stack
            .pop();
        if let Some(name) = name {
            self.collector
                .emit(Level::Debug, "span.exit", vec![("name", Value::from(name))]);
        }
    }
}

/// A sink adapter that stamps constant fields onto every event — e.g.
/// the enclosing MSOA round index onto the nested single-stage auction's
/// events.
pub struct Scoped<'a> {
    inner: &'a dyn Sink,
    extra: Vec<(&'static str, Value)>,
}

impl std::fmt::Debug for Scoped<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scoped")
            .field("extra", &self.extra)
            .finish()
    }
}

impl<'a> Scoped<'a> {
    /// Wraps `inner`, prepending `extra` to every emitted event.
    pub fn new(inner: &'a dyn Sink, extra: Vec<(&'static str, Value)>) -> Self {
        Scoped { inner, extra }
    }
}

impl Sink for Scoped<'_> {
    fn emit(&self, level: Level, name: &'static str, fields: Vec<(&'static str, Value)>) {
        let mut all = self.extra.clone();
        all.extend(fields);
        self.inner.emit(level, name, all);
    }

    fn emit_profile(&self, name: &'static str, fields: Vec<(&'static str, Value)>) {
        let mut all = self.extra.clone();
        all.extend(fields);
        self.inner.emit_profile(name, all);
    }
}

/// A zero-cost optional trace handle.
///
/// Instrumented code takes a `&Trace` and calls [`Trace::emit_with`];
/// when the trace is off the field-building closure is never run, so an
/// untraced hot path pays one branch per potential event and allocates
/// nothing.
#[derive(Clone, Copy)]
pub struct Trace<'a> {
    sink: Option<&'a dyn Sink>,
}

impl std::fmt::Debug for Trace<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("on", &self.sink.is_some())
            .finish()
    }
}

impl<'a> Trace<'a> {
    /// A disabled trace (the default for untraced entry points).
    pub fn off() -> Self {
        Trace { sink: None }
    }

    /// A trace feeding `sink`.
    pub fn new(sink: &'a dyn Sink) -> Self {
        Trace { sink: Some(sink) }
    }

    /// `true` when events will be recorded.
    pub fn is_on(&self) -> bool {
        self.sink.is_some()
    }

    /// The underlying sink, if on.
    pub fn sink(&self) -> Option<&'a dyn Sink> {
        self.sink
    }

    /// Emits an event, building the fields only when the trace is on.
    pub fn emit_with(
        &self,
        level: Level,
        name: &'static str,
        fields: impl FnOnce() -> Vec<(&'static str, Value)>,
    ) {
        if let Some(sink) = self.sink {
            sink.emit(level, name, fields());
        }
    }

    /// Records a profile-section entry, building the fields only when
    /// the trace is on. The entry carries any [`Scoped`] stamp (e.g.
    /// the round index) but never enters the deterministic section.
    pub fn profile_with(
        &self,
        name: &'static str,
        fields: impl FnOnce() -> Vec<(&'static str, Value)>,
    ) {
        if let Some(sink) = self.sink {
            sink.emit_profile(name, fields());
        }
    }
}

impl Default for Trace<'_> {
    fn default() -> Self {
        Trace::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_in_sequence_order() {
        let c = Collector::new();
        c.emit(Level::Info, "a", vec![]);
        c.emit(Level::Info, "b", vec![("k", Value::from(1u64))]);
        let events = c.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[1].name, "b");
    }

    #[test]
    fn spans_nest_in_the_path() {
        let c = Collector::new();
        {
            let _outer = c.span("msoa", vec![]);
            {
                let _inner = c.span("round", vec![("t", Value::from(0u64))]);
                c.emit(Level::Debug, "winner", vec![]);
            }
            c.emit(Level::Debug, "summary", vec![]);
        }
        let events = c.events();
        let winner = events.iter().find(|e| e.name == "winner").unwrap();
        assert_eq!(winner.span, "msoa.round");
        let summary = events.iter().find(|e| e.name == "summary").unwrap();
        assert_eq!(summary.span, "msoa");
        let exits = events.iter().filter(|e| e.name == "span.exit").count();
        assert_eq!(exits, 2);
    }

    #[test]
    fn profile_section_is_separate_and_tagged() {
        let c = Collector::new();
        c.emit(Level::Info, "det", vec![]);
        c.record_profile("timing", vec![("nanos", Value::from(123u64))]);
        let det = c.deterministic_jsonl();
        assert!(!det.contains("profile"), "{det}");
        let full = c.to_jsonl();
        let profile_lines: Vec<&str> = full
            .lines()
            .filter(|l| l.starts_with("{\"section\":\"profile\""))
            .collect();
        assert_eq!(profile_lines.len(), 1);
        assert!(full.starts_with(&det), "deterministic lines come first");
    }

    #[test]
    fn scoped_sink_stamps_fields() {
        let c = Collector::new();
        let scoped = Scoped::new(&c, vec![("round", Value::from(7u64))]);
        scoped.emit(Level::Debug, "x", vec![("k", Value::from(1u64))]);
        let e = &c.events()[0];
        assert_eq!(e.field("round").and_then(Value::as_f64), Some(7.0));
        assert_eq!(e.field("k").and_then(Value::as_f64), Some(1.0));
    }

    #[test]
    fn off_trace_never_builds_fields() {
        let trace = Trace::off();
        let mut built = false;
        trace.emit_with(Level::Info, "x", || {
            built = true;
            vec![]
        });
        assert!(!built);
        assert!(!trace.is_on());
    }

    #[test]
    fn on_trace_records() {
        let c = Collector::new();
        let trace = Trace::new(&c);
        trace.emit_with(Level::Info, "x", || vec![("k", Value::from(2u64))]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn collector_is_shareable_across_threads() {
        let c = std::sync::Arc::new(Collector::new());
        let a = c.clone();
        let t = std::thread::spawn(move || {
            a.emit(Level::Info, "from-thread", vec![]);
        });
        c.emit(Level::Info, "from-main", vec![]);
        t.join().unwrap();
        assert_eq!(c.len(), 2);
    }
}
