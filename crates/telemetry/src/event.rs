//! Events — the unit of structured telemetry.

use crate::value::{write_json_string, Value};

/// Severity of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Fine-grained instrumentation (audit-trail detail).
    Debug,
    /// Notable milestones (round boundaries, outcomes).
    Info,
    /// Something a human should see even without a subscriber.
    Warn,
}

impl Level {
    /// Lower-case name used in exported traces.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }
}

/// One recorded event: a name, a span path, and key–value fields.
///
/// Events carry **no wall-clock time and no process identity** — a trace
/// of the same run is byte-identical across machines, reruns, and thread
/// counts. Monotonic timings belong in a collector's *profile* section
/// ([`crate::Collector::record_profile`]), which is explicitly excluded
/// from the determinism contract.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Position in the collector's deterministic order.
    pub seq: u64,
    /// Severity.
    pub level: Level,
    /// Event name (dotted, e.g. `ssam.payment`).
    pub name: &'static str,
    /// Dotted path of enclosing spans (empty outside any span).
    pub span: String,
    /// Key–value payload in emission order.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Renders the event as one JSONL line (no trailing newline).
    pub fn write_jsonl(&self, out: &mut String) {
        out.push_str("{\"seq\":");
        let _ = std::fmt::Write::write_fmt(out, format_args!("{}", self.seq));
        out.push_str(",\"level\":\"");
        out.push_str(self.level.as_str());
        out.push_str("\",\"event\":");
        write_json_string(self.name, out);
        if !self.span.is_empty() {
            out.push_str(",\"span\":");
            write_json_string(&self.span, out);
        }
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(k, out);
            out.push(':');
            v.write_json(out);
        }
        out.push_str("}}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_stable_jsonl() {
        let e = Event {
            seq: 3,
            level: Level::Info,
            name: "round.start",
            span: "msoa".to_owned(),
            fields: vec![("round", Value::from(2u64)), ("demand", Value::from(7u64))],
        };
        let mut s = String::new();
        e.write_jsonl(&mut s);
        assert_eq!(
            s,
            "{\"seq\":3,\"level\":\"info\",\"event\":\"round.start\",\"span\":\"msoa\",\
             \"fields\":{\"round\":2,\"demand\":7}}"
        );
    }

    #[test]
    fn field_lookup() {
        let e = Event {
            seq: 0,
            level: Level::Debug,
            name: "x",
            span: String::new(),
            fields: vec![("k", Value::from(1u64))],
        };
        assert_eq!(e.field("k").and_then(Value::as_f64), Some(1.0));
        assert!(e.field("missing").is_none());
    }

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Debug < Level::Info && Level::Info < Level::Warn);
    }
}
