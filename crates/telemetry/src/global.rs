//! The process-wide diagnostic subscriber.
//!
//! This is the second of the crate's two layers. The audit trail uses
//! explicit per-run [`Collector`](crate::Collector)s so parallel runs
//! stay deterministic; *diagnostics* — one-shot warnings, estimator
//! notices — instead go through a single optional global subscriber so
//! library code deep in the call stack can report without threading a
//! handle everywhere.
//!
//! Cost model: when no subscriber is installed, [`enabled`] is a single
//! relaxed atomic load returning `false` for sub-`Warn` levels, so
//! `event!(debug: ...)` in a hot loop compiles to a load and a branch.
//! `Warn` events are never dropped: with no subscriber they fall back to
//! a `warning: ...` line on stderr, preserving the behavior of the
//! `eprintln!` diagnostics this crate replaces.

use crate::event::Level;
use crate::value::Value;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

/// A consumer of global diagnostic events.
pub trait Subscriber: Send + Sync {
    /// `true` when events at `level` should be constructed and delivered.
    fn enabled(&self, level: Level) -> bool;
    /// Delivers one event.
    fn event(&self, level: Level, name: &'static str, fields: &[(&'static str, Value)]);
}

static INSTALLED: AtomicBool = AtomicBool::new(false);
static SUBSCRIBER: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);

/// Installs `sub` as the process-wide subscriber, replacing any
/// previous one.
pub fn set_subscriber(sub: Arc<dyn Subscriber>) {
    *SUBSCRIBER.write().expect("subscriber lock") = Some(sub);
    INSTALLED.store(true, Ordering::Release);
}

/// Removes the process-wide subscriber, restoring the default
/// (stderr for `Warn`, drop otherwise).
pub fn clear_subscriber() {
    INSTALLED.store(false, Ordering::Release);
    *SUBSCRIBER.write().expect("subscriber lock") = None;
}

/// `true` when an event at `level` would be delivered somewhere —
/// callers use this to skip field construction entirely.
pub fn enabled(level: Level) -> bool {
    if INSTALLED.load(Ordering::Acquire) {
        match SUBSCRIBER.read().expect("subscriber lock").as_ref() {
            Some(sub) => sub.enabled(level),
            None => level >= Level::Warn,
        }
    } else {
        // No subscriber: only warnings survive (to stderr).
        level >= Level::Warn
    }
}

/// Delivers a diagnostic event to the global subscriber, or — for
/// `Warn` with no subscriber — to stderr.
pub fn dispatch(level: Level, name: &'static str, fields: &[(&'static str, Value)]) {
    if INSTALLED.load(Ordering::Acquire) {
        let guard = SUBSCRIBER.read().expect("subscriber lock");
        if let Some(sub) = guard.as_ref() {
            if sub.enabled(level) {
                sub.event(level, name, fields);
            }
            return;
        }
    }
    if level >= Level::Warn {
        eprintln!("warning: {}", render_message(name, fields));
    }
}

/// Human-readable one-liner: the `message` field when present,
/// otherwise `name` followed by `key=value` pairs.
pub(crate) fn render_message(name: &'static str, fields: &[(&'static str, Value)]) -> String {
    if let Some((_, Value::Str(msg))) = fields.iter().find(|(k, _)| *k == "message") {
        return msg.clone();
    }
    let mut out = String::from(name);
    for (k, v) in fields {
        out.push(' ');
        out.push_str(k);
        out.push('=');
        let mut rendered = String::new();
        v.write_json(&mut rendered);
        out.push_str(&rendered);
    }
    out
}

/// A subscriber that appends every delivered event to a shared
/// [`Collector`](crate::Collector) — useful in tests and for the CLI's
/// `--trace` mode, where diagnostics should land in the same artifact
/// as the audit trail.
#[derive(Debug)]
pub struct CollectorSubscriber {
    collector: Arc<crate::Collector>,
    min_level: Level,
}

impl CollectorSubscriber {
    /// Forwards events at `min_level` and above into `collector`.
    pub fn new(collector: Arc<crate::Collector>, min_level: Level) -> Self {
        CollectorSubscriber {
            collector,
            min_level,
        }
    }
}

impl Subscriber for CollectorSubscriber {
    fn enabled(&self, level: Level) -> bool {
        level >= self.min_level
    }

    fn event(&self, level: Level, name: &'static str, fields: &[(&'static str, Value)]) {
        use crate::collector::Sink;
        self.collector.emit(level, name, fields.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The global subscriber is process-wide state; serialize the tests
    // that touch it.
    static GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_below_warn_by_default() {
        let _g = GUARD.lock().unwrap();
        clear_subscriber();
        assert!(!enabled(Level::Debug));
        assert!(!enabled(Level::Info));
        assert!(enabled(Level::Warn));
    }

    #[test]
    fn collector_subscriber_captures() {
        let _g = GUARD.lock().unwrap();
        let c = Arc::new(crate::Collector::new());
        set_subscriber(Arc::new(CollectorSubscriber::new(c.clone(), Level::Info)));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        dispatch(Level::Info, "test.event", &[("k", Value::from(1u64))]);
        dispatch(Level::Debug, "dropped", &[]);
        clear_subscriber();
        let events = c.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "test.event");
    }

    #[test]
    fn render_message_prefers_message_field() {
        assert_eq!(
            render_message("x", &[("message", Value::from("hello world"))]),
            "hello world"
        );
        assert_eq!(
            render_message("alpha.clamped", &[("alpha", Value::from(2.5))]),
            "alpha.clamped alpha=2.5"
        );
    }
}
