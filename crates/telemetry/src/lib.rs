//! # edge-telemetry
//!
//! Structured, deterministic tracing for the edge-market workspace.
//!
//! The crate has two independent layers:
//!
//! 1. **Audit trail** — explicit, per-run. A [`Collector`] records
//!    sequence-numbered [`Event`]s; instrumented code receives a
//!    [`Trace`] handle (a nullable sink reference) and pays nothing
//!    when it is off. Exports are JSONL and **deterministic**: no
//!    wall-clock, PID, or thread-identity fields, so the same workload
//!    produces byte-identical traces across machines and thread
//!    counts. Timings live in a separate profile section
//!    ([`Collector::record_profile`]), clearly tagged
//!    `"section":"profile"` and excluded from the determinism contract.
//! 2. **Diagnostics** — a process-wide optional [`Subscriber`]
//!    reached through the [`event!`] macro. With no subscriber
//!    installed, sub-`Warn` events cost one atomic load; `Warn` events
//!    fall back to a `warning: ...` line on stderr.
//!
//! Counters and log-bucketed histograms ([`Counter`], [`LogHistogram`])
//! cover hot-path statistics too frequent to record as events, and the
//! [`registry`] module exposes named, labeled series of them (plus
//! [`Gauge`]s and quantile [`Summary`]s) in Prometheus text format for
//! the `edge-market serve` `/metrics` endpoint.
//!
//! The crate is deliberately dependency-free (std only) so every
//! workspace member can embed it without dragging in the shims.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod collector;
mod event;
pub mod global;
mod metrics;
pub mod registry;
pub mod spans;
mod value;

pub use collector::{Collector, ProfileEntry, Scoped, Sink, SpanGuard, Trace};
pub use event::{Event, Level};
pub use global::{clear_subscriber, set_subscriber, CollectorSubscriber, Subscriber};
pub use metrics::{pricing, selection, Counter, LogHistogram, HISTOGRAM_BUCKETS};
pub use registry::{Gauge, Registry, Summary};
pub use value::Value;

/// Emits a diagnostic event to the global subscriber.
///
/// Fields are only constructed when a consumer exists for the level
/// — `event!(debug: ...)` with no subscriber is one atomic load.
///
/// ```
/// edge_telemetry::event!(warn: "alpha.clamped", alpha = 2.5, theta = 10u64);
/// edge_telemetry::event!(info: "estimate.partial", message = "using 3 of 5 samples");
/// ```
#[macro_export]
macro_rules! event {
    (debug: $name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        $crate::event!(@dispatch $crate::Level::Debug, $name $(, $key = $val)*)
    };
    (info: $name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        $crate::event!(@dispatch $crate::Level::Info, $name $(, $key = $val)*)
    };
    (warn: $name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        $crate::event!(@dispatch $crate::Level::Warn, $name $(, $key = $val)*)
    };
    (@dispatch $level:expr, $name:expr $(, $key:ident = $val:expr)*) => {
        if $crate::global::enabled($level) {
            $crate::global::dispatch(
                $level,
                $name,
                &[$((stringify!($key), $crate::Value::from($val))),*],
            );
        }
    };
}

/// Opens a span on a [`Collector`], returning the RAII guard.
///
/// ```
/// let collector = edge_telemetry::Collector::new();
/// {
///     let _span = edge_telemetry::span!(collector, "round", t = 3u64);
///     // events emitted here carry span "round"
/// }
/// ```
#[macro_export]
macro_rules! span {
    ($collector:expr, $name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        $collector.span(
            $name,
            vec![$((stringify!($key), $crate::Value::from($val))),*],
        )
    };
}

#[cfg(test)]
mod macro_tests {
    use crate::collector::Sink;

    #[test]
    fn span_macro_builds_fields() {
        let c = crate::Collector::new();
        {
            let _g = span!(c, "outer", t = 1u64);
            c.emit(crate::Level::Info, "inside", vec![]);
        }
        let events = c.events();
        assert_eq!(events[0].name, "span.enter");
        assert_eq!(
            events[0].field("t").and_then(crate::Value::as_f64),
            Some(1.0)
        );
        assert_eq!(events[1].span, "outer");
    }

    #[test]
    fn event_macro_skips_fields_when_disabled() {
        crate::clear_subscriber();
        // Debug is disabled by default; the field expression must not run.
        let mut ran = false;
        event!(debug: "x", flag = {
            ran = true;
            true
        });
        assert!(!ran);
    }
}
