//! Counters and log-bucketed histograms for hot-path statistics.
//!
//! These are deliberately simpler than the event pipeline: a counter is
//! one relaxed atomic add, a histogram record is a `leading_zeros` plus
//! one atomic add. Hot paths (heap pops, lazy-deletion invalidations)
//! bump them unconditionally and the aggregate is emitted as a single
//! event at the end of a run.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two buckets: values `0`, `1`, `2–3`, `4–7`, …,
/// `2^62–(2^63−1)`, plus a final bucket for `≥ 2^63`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A histogram with power-of-two bucket boundaries.
///
/// Bucket `0` counts the value `0`; bucket `b ≥ 1` counts values in
/// `[2^(b−1), 2^b)`. Good enough to see the shape of a latency or
/// work-count distribution without tuning bucket edges.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }

    /// Index of the bucket that holds `value`.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Lower bound of bucket `index` (inclusive).
    pub fn bucket_floor(index: usize) -> u64 {
        if index == 0 {
            0
        } else {
            1u64 << (index - 1)
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Non-empty buckets as `(floor, count)` pairs, ascending.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((Self::bucket_floor(i), n))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LogHistogram::bucket_index(0), 0);
        assert_eq!(LogHistogram::bucket_index(1), 1);
        assert_eq!(LogHistogram::bucket_index(2), 2);
        assert_eq!(LogHistogram::bucket_index(3), 2);
        assert_eq!(LogHistogram::bucket_index(4), 3);
        assert_eq!(LogHistogram::bucket_index(u64::MAX), 64);
        assert_eq!(LogHistogram::bucket_floor(0), 0);
        assert_eq!(LogHistogram::bucket_floor(1), 1);
        assert_eq!(LogHistogram::bucket_floor(3), 4);
    }

    #[test]
    fn snapshot_reports_nonempty_buckets() {
        let h = LogHistogram::new();
        for v in [0, 1, 1, 5, 6, 7] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.snapshot(), vec![(0, 1), (1, 2), (4, 3)]);
    }
}
