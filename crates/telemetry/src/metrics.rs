//! Counters and log-bucketed histograms for hot-path statistics.
//!
//! These are deliberately simpler than the event pipeline: a counter is
//! one relaxed atomic add, a histogram record is a `leading_zeros` plus
//! one atomic add. Hot paths (heap pops, lazy-deletion invalidations)
//! bump them unconditionally and the aggregate is emitted as a single
//! event at the end of a run.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two buckets: values `0`, `1`, `2–3`, `4–7`, …,
/// `2^62–(2^63−1)`, plus a final bucket for `≥ 2^63`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A histogram with power-of-two bucket boundaries.
///
/// Bucket `0` counts the value `0`; bucket `b ≥ 1` counts values in
/// `[2^(b−1), 2^b)`. Good enough to see the shape of a latency or
/// work-count distribution without tuning bucket edges.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }

    /// Index of the bucket that holds `value`.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Lower bound of bucket `index` (inclusive).
    pub fn bucket_floor(index: usize) -> u64 {
        if index == 0 {
            0
        } else {
            1u64 << (index - 1)
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Non-empty buckets as `(floor, count)` pairs, ascending.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((Self::bucket_floor(i), n))
            })
            .collect()
    }
}

/// Ambient pricing-phase metrics, fed by the auction's payment loop.
///
/// Wall-clock time spent computing critical-value payments must stay
/// out of the deterministic trace section (1-thread and N-thread runs
/// are required to produce byte-identical traces), so the pricing phase
/// reports its timing and replay counts through these process-global
/// atomics instead. Consumers (the scale benchmark) take a [`snapshot`]
/// before and after a run and work with the delta, which keeps the
/// metrics valid even when several runs share the process.
pub mod pricing {
    use super::Counter;

    static REPLAYS: Counter = Counter::new();
    static REPLAY_ITERATIONS: Counter = Counter::new();
    static PREFIX_ITERATIONS: Counter = Counter::new();
    static NANOS: Counter = Counter::new();

    /// A point-in-time reading of the pricing metrics.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct PricingSnapshot {
        /// Payment replays performed (one per auction winner).
        pub replays: u64,
        /// Total replay iterations across all replays (prefix + suffix).
        pub replay_iterations: u64,
        /// Replay iterations served from the shared prefix of the real
        /// run (O(1) each) instead of heap work.
        pub prefix_iterations: u64,
        /// Wall-clock nanoseconds spent in the payment phase.
        pub nanos: u64,
    }

    impl PricingSnapshot {
        /// The change since an `earlier` snapshot.
        #[must_use]
        pub fn delta_since(&self, earlier: &PricingSnapshot) -> PricingSnapshot {
            PricingSnapshot {
                replays: self.replays.wrapping_sub(earlier.replays),
                replay_iterations: self
                    .replay_iterations
                    .wrapping_sub(earlier.replay_iterations),
                prefix_iterations: self
                    .prefix_iterations
                    .wrapping_sub(earlier.prefix_iterations),
                nanos: self.nanos.wrapping_sub(earlier.nanos),
            }
        }
    }

    /// Accumulates one payment phase's totals.
    pub fn record(replays: u64, replay_iterations: u64, prefix_iterations: u64, nanos: u64) {
        REPLAYS.add(replays);
        REPLAY_ITERATIONS.add(replay_iterations);
        PREFIX_ITERATIONS.add(prefix_iterations);
        NANOS.add(nanos);
    }

    /// The current cumulative totals.
    pub fn snapshot() -> PricingSnapshot {
        PricingSnapshot {
            replays: REPLAYS.get(),
            replay_iterations: REPLAY_ITERATIONS.get(),
            prefix_iterations: PREFIX_ITERATIONS.get(),
            nanos: NANOS.get(),
        }
    }
}

/// Ambient selection-phase metrics, fed by the auction's winner
/// selection. Mirrors [`pricing`]: wall-clock must stay out of the
/// deterministic trace (runs are required to be byte-identical across
/// thread and shard counts), so the selection phase reports its timing
/// through process-global atomics and consumers work with snapshot
/// deltas.
pub mod selection {
    use super::Counter;

    static SELECTION_NS: Counter = Counter::new();
    static MERGE_NS: Counter = Counter::new();

    /// A point-in-time reading of the selection metrics.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct SelectionSnapshot {
        /// Wall-clock nanoseconds spent in the whole selection phase
        /// (arena build + greedy merge).
        pub selection_ns: u64,
        /// Of those, nanoseconds spent in the cross-shard merge loop
        /// (the sequential argmin over lane heads).
        pub merge_ns: u64,
    }

    impl SelectionSnapshot {
        /// The change since an `earlier` snapshot.
        #[must_use]
        pub fn delta_since(&self, earlier: &SelectionSnapshot) -> SelectionSnapshot {
            SelectionSnapshot {
                selection_ns: self.selection_ns.wrapping_sub(earlier.selection_ns),
                merge_ns: self.merge_ns.wrapping_sub(earlier.merge_ns),
            }
        }
    }

    /// Accumulates one selection phase's totals.
    pub fn record(selection_ns: u64, merge_ns: u64) {
        SELECTION_NS.add(selection_ns);
        MERGE_NS.add(merge_ns);
    }

    /// The current cumulative totals.
    pub fn snapshot() -> SelectionSnapshot {
        SelectionSnapshot {
            selection_ns: SELECTION_NS.get(),
            merge_ns: MERGE_NS.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_deltas_isolate_one_run() {
        let before = selection::snapshot();
        selection::record(1_000, 300);
        selection::record(500, 100);
        let delta = selection::snapshot().delta_since(&before);
        assert_eq!(delta.selection_ns, 1_500);
        assert_eq!(delta.merge_ns, 400);
    }

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LogHistogram::bucket_index(0), 0);
        assert_eq!(LogHistogram::bucket_index(1), 1);
        assert_eq!(LogHistogram::bucket_index(2), 2);
        assert_eq!(LogHistogram::bucket_index(3), 2);
        assert_eq!(LogHistogram::bucket_index(4), 3);
        assert_eq!(LogHistogram::bucket_index(u64::MAX), 64);
        assert_eq!(LogHistogram::bucket_floor(0), 0);
        assert_eq!(LogHistogram::bucket_floor(1), 1);
        assert_eq!(LogHistogram::bucket_floor(3), 4);
    }

    #[test]
    fn snapshot_reports_nonempty_buckets() {
        let h = LogHistogram::new();
        for v in [0, 1, 1, 5, 6, 7] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.snapshot(), vec![(0, 1), (1, 2), (4, 3)]);
    }

    #[test]
    fn pricing_deltas_isolate_one_run() {
        let before = pricing::snapshot();
        pricing::record(3, 40, 25, 1_000);
        pricing::record(2, 10, 5, 500);
        let delta = pricing::snapshot().delta_since(&before);
        assert_eq!(delta.replays, 5);
        assert_eq!(delta.replay_iterations, 50);
        assert_eq!(delta.prefix_iterations, 30);
        assert_eq!(delta.nanos, 1_500);
    }
}
