//! A thread-safe metric registry with Prometheus text exposition.
//!
//! The audit trail ([`crate::Collector`]) answers "what happened in
//! this run"; the registry answers "what is the process doing right
//! now". Instrumented layers register named, labeled series once and
//! then bump them with relaxed atomics — a counter add on the hot path
//! costs the same as the existing [`Counter`]. A scrape
//! ([`Registry::render`]) walks the registry under its lock and writes
//! Prometheus text format 0.0.4: `# HELP` / `# TYPE` lines, escaped
//! label values, and summary quantiles (p50/p95/p99) interpolated from
//! [`LogHistogram`] power-of-two buckets.
//!
//! Scrapes only *read* atomics, so rendering can never perturb an
//! auction outcome — the `serve` determinism test leans on this.
//!
//! The module also ships a parser ([`parse_exposition`]) and validator
//! ([`validate_exposition`]) for the same format, used by the
//! round-trip tests and by `edge-market metrics-lint` in CI.

use crate::metrics::{Counter, LogHistogram};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Quantiles every summary exposes.
pub const SUMMARY_QUANTILES: [f64; 3] = [0.5, 0.95, 0.99];

/// A gauge: an `f64` that can go up and down, stored as bits in an
/// atomic so reads never tear and writes never need a lock.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at `0.0` (whose bit pattern is zero).
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (possibly negative) with a CAS loop.
    pub fn add(&self, delta: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A summary: a [`LogHistogram`] plus a running sum, exposed as a
/// Prometheus `summary` with quantiles interpolated from the
/// power-of-two buckets.
#[derive(Debug, Default)]
pub struct Summary {
    hist: LogHistogram,
    sum: AtomicU64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            hist: LogHistogram::new(),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        self.hist.record(value);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0 < q <= 1`), linearly interpolated inside
    /// the power-of-two bucket that holds the target rank. Returns
    /// `0.0` for an empty summary. Accuracy is bounded by the bucket
    /// width (a factor of two), which is enough to see the shape of a
    /// latency distribution.
    pub fn quantile(&self, q: f64) -> f64 {
        let snapshot = self.hist.snapshot();
        let total: u64 = snapshot.iter().map(|&(_, n)| n).sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for &(floor, n) in &snapshot {
            if cumulative + n >= rank {
                if floor == 0 {
                    return 0.0;
                }
                let into_bucket = (rank - cumulative) as f64 / n as f64;
                return floor as f64 + floor as f64 * into_bucket;
            }
            cumulative += n;
        }
        // Unreachable: rank <= total. Return the top bucket floor.
        snapshot.last().map_or(0.0, |&(floor, _)| floor as f64)
    }
}

/// What a family measures — determines the `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone integer counter.
    Counter,
    /// Monotone float counter (e.g. accumulated payment).
    FloatCounter,
    /// Float that can go up and down.
    Gauge,
    /// Log-bucketed distribution with quantiles.
    Summary,
}

impl MetricKind {
    fn type_name(self) -> &'static str {
        match self {
            MetricKind::Counter | MetricKind::FloatCounter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Summary => "summary",
        }
    }
}

#[derive(Debug)]
enum Cell {
    Counter(Arc<Counter>),
    Float(Arc<Gauge>),
    Gauge(Arc<Gauge>),
    Summary(Arc<Summary>),
}

type LabelSet = Vec<(&'static str, String)>;

#[derive(Debug)]
struct Family {
    kind: MetricKind,
    help: &'static str,
    series: BTreeMap<LabelSet, Cell>,
}

/// A thread-safe registry of metric families.
///
/// Registration takes the lock; the returned `Arc` handles are then
/// bumped lock-free. Call sites are static, so invalid names and kind
/// conflicts are programming errors and panic.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn series(
        &self,
        name: &'static str,
        help: &'static str,
        kind: MetricKind,
        labels: &[(&'static str, &str)],
        make: impl FnOnce() -> Cell,
    ) -> Cell {
        assert!(
            valid_metric_name(name),
            "invalid metric name {name:?}: must match [a-zA-Z_:][a-zA-Z0-9_:]*"
        );
        for (key, _) in labels {
            assert!(
                valid_label_name(key),
                "invalid label name {key:?} on metric {name}"
            );
        }
        let key: LabelSet = labels
            .iter()
            .map(|&(k, v)| (k, v.to_string()))
            .collect::<Vec<_>>();
        let mut families = self.families.lock().expect("registry lock poisoned");
        let family = families.entry(name).or_insert_with(|| Family {
            kind,
            help,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name} registered twice with different kinds ({:?} vs {kind:?})",
            family.kind
        );
        let cell = family.series.entry(key).or_insert_with(make);
        match cell {
            Cell::Counter(c) => Cell::Counter(Arc::clone(c)),
            Cell::Float(g) => Cell::Float(Arc::clone(g)),
            Cell::Gauge(g) => Cell::Gauge(Arc::clone(g)),
            Cell::Summary(s) => Cell::Summary(Arc::clone(s)),
        }
    }

    /// Registers (or retrieves) a counter series.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Counter> {
        match self.series(name, help, MetricKind::Counter, labels, || {
            Cell::Counter(Arc::new(Counter::new()))
        }) {
            Cell::Counter(c) => c,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Registers (or retrieves) a float counter series (monotone by
    /// convention; the registry exposes it with `# TYPE counter`).
    pub fn float_counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Gauge> {
        match self.series(name, help, MetricKind::FloatCounter, labels, || {
            Cell::Float(Arc::new(Gauge::new()))
        }) {
            Cell::Float(g) => g,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Registers (or retrieves) a gauge series.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Gauge> {
        match self.series(name, help, MetricKind::Gauge, labels, || {
            Cell::Gauge(Arc::new(Gauge::new()))
        }) {
            Cell::Gauge(g) => g,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Registers (or retrieves) a summary series.
    pub fn summary(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Summary> {
        match self.series(name, help, MetricKind::Summary, labels, || {
            Cell::Summary(Arc::new(Summary::new()))
        }) {
            Cell::Summary(s) => s,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Renders the whole registry in Prometheus text format 0.0.4.
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("registry lock poisoned");
        let mut out = String::new();
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(family.help));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.type_name());
            for (labels, cell) in &family.series {
                match cell {
                    Cell::Counter(c) => {
                        let _ = writeln!(out, "{name}{} {}", render_labels(labels, None), c.get());
                    }
                    Cell::Float(g) | Cell::Gauge(g) => {
                        let _ = writeln!(
                            out,
                            "{name}{} {}",
                            render_labels(labels, None),
                            render_f64(g.get())
                        );
                    }
                    Cell::Summary(s) => {
                        for q in SUMMARY_QUANTILES {
                            let _ = writeln!(
                                out,
                                "{name}{} {}",
                                render_labels(labels, Some(q)),
                                render_f64(s.quantile(q))
                            );
                        }
                        let _ =
                            writeln!(out, "{name}_sum{} {}", render_labels(labels, None), s.sum());
                        let _ = writeln!(
                            out,
                            "{name}_count{} {}",
                            render_labels(labels, None),
                            s.count()
                        );
                    }
                }
            }
        }
        out
    }
}

/// The process-global registry every instrumented layer writes to.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// `true` iff `s` matches the Prometheus metric-name grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// `true` iff `s` matches the label-name grammar `[a-zA-Z_][a-zA-Z0-9_]*`
/// and does not use the reserved `__` prefix.
pub fn valid_label_name(s: &str) -> bool {
    if s.starts_with("__") {
        return false;
    }
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &LabelSet, quantile: Option<f64>) -> String {
    if labels.is_empty() && quantile.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some(q) = quantile {
        parts.push(format!("quantile=\"{}\"", render_f64(q)));
    }
    format!("{{{}}}", parts.join(","))
}

/// Shortest round-trip rendering of an `f64` (Prometheus accepts Rust's
/// `Display` forms, including `NaN` and `inf`).
fn render_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

// ---------------------------------------------------------------------
// Exposition parsing & validation
// ---------------------------------------------------------------------

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSample {
    /// Full sample name as written (may carry `_sum`/`_count`).
    pub name: String,
    /// Label pairs in written order.
    pub labels: Vec<(String, String)>,
    /// Parsed value.
    pub value: f64,
}

impl ParsedSample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// One parsed metric family.
#[derive(Debug, Clone, Default)]
pub struct ParsedFamily {
    /// `# HELP` text, unescaped.
    pub help: Option<String>,
    /// `# TYPE`, e.g. `counter`.
    pub kind: Option<String>,
    /// All samples attributed to the family (including `_sum`/`_count`
    /// children of summaries).
    pub samples: Vec<ParsedSample>,
}

/// A parsed exposition: family name → family.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// Families keyed by base name.
    pub families: BTreeMap<String, ParsedFamily>,
}

impl Exposition {
    /// Looks up a sample by exact name and label subset match.
    pub fn sample(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.families
            .values()
            .flat_map(|f| &f.samples)
            .find_map(|s| {
                let matches = s.name == name
                    && labels.iter().all(|&(k, v)| s.label(k) == Some(v))
                    && s.labels.len() == labels.len();
                matches.then_some(s.value)
            })
    }

    /// Total number of sample lines.
    pub fn num_samples(&self) -> usize {
        self.families.values().map(|f| f.samples.len()).sum()
    }
}

/// Parses Prometheus text format 0.0.4. Strict about the parts the
/// registry emits: HELP/TYPE must precede their family's samples, label
/// syntax must be well-formed, values must parse as floats, and a
/// family's samples must not interleave with another family's.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut exposition = Exposition::default();
    let mut last_family: Option<String> = None;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').map_or((rest, ""), |(n, h)| (n, h));
            check_name(name, lineno)?;
            let family = exposition.families.entry(name.to_string()).or_default();
            if !family.samples.is_empty() {
                return Err(format!("line {lineno}: HELP for {name} after its samples"));
            }
            if family.help.is_some() {
                return Err(format!("line {lineno}: duplicate HELP for {name}"));
            }
            family.help = Some(unescape_help(help));
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {lineno}: TYPE without a type"))?;
            check_name(name, lineno)?;
            if !matches!(
                kind,
                "counter" | "gauge" | "summary" | "histogram" | "untyped"
            ) {
                return Err(format!("line {lineno}: unknown TYPE {kind:?}"));
            }
            let family = exposition.families.entry(name.to_string()).or_default();
            if !family.samples.is_empty() {
                return Err(format!("line {lineno}: TYPE for {name} after its samples"));
            }
            if family.kind.is_some() {
                return Err(format!("line {lineno}: duplicate TYPE for {name}"));
            }
            family.kind = Some(kind.to_string());
        } else if line.starts_with('#') {
            // Free-form comment.
        } else {
            let sample = parse_sample(line, lineno)?;
            let base = base_family(&exposition, &sample.name);
            if let Some(prev) = &last_family {
                if *prev != base
                    && exposition
                        .families
                        .get(&base)
                        .is_some_and(|f| !f.samples.is_empty())
                {
                    return Err(format!(
                        "line {lineno}: samples for {base} interleave with {prev}"
                    ));
                }
            }
            last_family = Some(base.clone());
            exposition
                .families
                .entry(base)
                .or_default()
                .samples
                .push(sample);
        }
    }
    Ok(exposition)
}

/// Validates an exposition and returns `(families_with_samples,
/// total_samples)`. On top of [`parse_exposition`]'s grammar checks it
/// requires every family with samples to carry HELP and TYPE, counter
/// samples to be finite and non-negative, and summary quantile labels
/// to parse as probabilities.
pub fn validate_exposition(text: &str) -> Result<(usize, usize), String> {
    let exposition = parse_exposition(text)?;
    let mut populated = 0usize;
    for (name, family) in &exposition.families {
        if family.samples.is_empty() {
            continue;
        }
        populated += 1;
        let kind = family
            .kind
            .as_deref()
            .ok_or_else(|| format!("family {name} has samples but no TYPE line"))?;
        if family.help.is_none() {
            return Err(format!("family {name} has samples but no HELP line"));
        }
        for sample in &family.samples {
            for (key, _) in &sample.labels {
                if key != "quantile" && !valid_label_name(key) {
                    return Err(format!("family {name}: invalid label name {key:?}"));
                }
            }
            match kind {
                "counter" if !sample.value.is_finite() || sample.value < 0.0 => {
                    return Err(format!(
                        "counter {name} has non-monotone-compatible value {}",
                        sample.value
                    ));
                }
                "summary" => {
                    if let Some(q) = sample.label("quantile") {
                        let q: f64 = q
                            .parse()
                            .map_err(|_| format!("summary {name}: bad quantile {q:?}"))?;
                        if !(0.0..=1.0).contains(&q) {
                            return Err(format!("summary {name}: quantile {q} out of range"));
                        }
                    }
                }
                _ => {}
            }
        }
    }
    Ok((populated, exposition.num_samples()))
}

fn check_name(name: &str, lineno: usize) -> Result<(), String> {
    if valid_metric_name(name) {
        Ok(())
    } else {
        Err(format!("line {lineno}: invalid metric name {name:?}"))
    }
}

fn unescape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Resolves a sample name to its family: `_sum`/`_count`/`_bucket`
/// suffixes fold into an already-declared summary/histogram family.
fn base_family(exposition: &Exposition, name: &str) -> String {
    for (suffix, kinds) in [
        ("_sum", &["summary", "histogram"][..]),
        ("_count", &["summary", "histogram"][..]),
        ("_bucket", &["histogram"][..]),
    ] {
        if let Some(base) = name.strip_suffix(suffix) {
            if exposition
                .families
                .get(base)
                .and_then(|f| f.kind.as_deref())
                .is_some_and(|k| kinds.contains(&k))
            {
                return base.to_string();
            }
        }
    }
    name.to_string()
}

fn parse_sample(line: &str, lineno: usize) -> Result<ParsedSample, String> {
    let bytes = line.as_bytes();
    let mut pos = 0;
    while pos < bytes.len() && !matches!(bytes[pos], b'{' | b' ' | b'\t') {
        pos += 1;
    }
    let name = &line[..pos];
    check_name(name, lineno)?;
    let mut labels = Vec::new();
    if pos < bytes.len() && bytes[pos] == b'{' {
        pos += 1;
        loop {
            while pos < bytes.len() && bytes[pos] == b' ' {
                pos += 1;
            }
            if pos < bytes.len() && bytes[pos] == b'}' {
                pos += 1;
                break;
            }
            let key_start = pos;
            while pos < bytes.len() && bytes[pos] != b'=' {
                pos += 1;
            }
            if pos >= bytes.len() {
                return Err(format!("line {lineno}: label without '='"));
            }
            let key = line[key_start..pos].trim().to_string();
            pos += 1; // '='
            if pos >= bytes.len() || bytes[pos] != b'"' {
                return Err(format!("line {lineno}: label value must be quoted"));
            }
            pos += 1; // opening quote
            let mut value = String::new();
            loop {
                if pos >= bytes.len() {
                    return Err(format!("line {lineno}: unterminated label value"));
                }
                match bytes[pos] {
                    b'"' => {
                        pos += 1;
                        break;
                    }
                    b'\\' => {
                        pos += 1;
                        match bytes.get(pos) {
                            Some(b'n') => value.push('\n'),
                            Some(b'\\') => value.push('\\'),
                            Some(b'"') => value.push('"'),
                            _ => return Err(format!("line {lineno}: bad escape in label value")),
                        }
                        pos += 1;
                    }
                    _ => {
                        // Advance one UTF-8 character.
                        let ch = line[pos..]
                            .chars()
                            .next()
                            .ok_or_else(|| format!("line {lineno}: bad UTF-8"))?;
                        value.push(ch);
                        pos += ch.len_utf8();
                    }
                }
            }
            if labels.iter().any(|(k, _)| *k == key) {
                return Err(format!("line {lineno}: duplicate label {key:?}"));
            }
            labels.push((key, value));
            while pos < bytes.len() && bytes[pos] == b' ' {
                pos += 1;
            }
            if pos < bytes.len() && bytes[pos] == b',' {
                pos += 1;
            }
        }
    }
    let rest = line[pos..].trim();
    if rest.is_empty() {
        return Err(format!("line {lineno}: sample without a value"));
    }
    // An optional integer timestamp may follow the value.
    let mut parts = rest.split_whitespace();
    let value_str = parts.next().expect("non-empty rest");
    if let Some(ts) = parts.next() {
        if ts.parse::<i64>().is_err() {
            return Err(format!("line {lineno}: bad timestamp {ts:?}"));
        }
    }
    if parts.next().is_some() {
        return Err(format!("line {lineno}: trailing tokens after value"));
    }
    let value = match value_str {
        "NaN" => f64::NAN,
        "+Inf" | "Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        other => other
            .parse::<f64>()
            .map_err(|_| format!("line {lineno}: bad value {other:?}"))?,
    };
    Ok(ParsedSample {
        name: name.to_string(),
        labels,
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_set_add_get() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        g.add(-1.0);
        assert_eq!(g.get(), 1.5);
    }

    #[test]
    fn summary_quantiles_interpolate() {
        let s = Summary::new();
        for _ in 0..100 {
            s.observe(8); // bucket [8, 16)
        }
        assert_eq!(s.count(), 100);
        assert_eq!(s.sum(), 800);
        let p50 = s.quantile(0.5);
        assert!((8.0..=16.0).contains(&p50), "p50 = {p50}");
        let p99 = s.quantile(0.99);
        assert!(p99 >= p50, "p99 {p99} < p50 {p50}");
    }

    #[test]
    fn summary_empty_is_zero() {
        let s = Summary::new();
        assert_eq!(s.quantile(0.5), 0.0);
    }

    #[test]
    fn registry_handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("edge_test_total", "help", &[("figure", "fig3a")]);
        let b = r.counter("edge_test_total", "help", &[("figure", "fig3a")]);
        a.add(3);
        assert_eq!(b.get(), 3);
        let other = r.counter("edge_test_total", "help", &[("figure", "fig3b")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    #[should_panic(expected = "different kinds")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        let _ = r.counter("edge_conflict", "help", &[]);
        let _ = r.gauge("edge_conflict", "help", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_name_panics() {
        let r = Registry::new();
        let _ = r.counter("0bad-name", "help", &[]);
    }

    #[test]
    fn name_and_label_grammar() {
        assert!(valid_metric_name("edge_auction_rounds_total"));
        assert!(valid_metric_name(":ns:metric"));
        assert!(!valid_metric_name("9lives"));
        assert!(!valid_metric_name("has-dash"));
        assert!(!valid_metric_name(""));
        assert!(valid_label_name("figure"));
        assert!(!valid_label_name("__reserved"));
        assert!(!valid_label_name("1st"));
    }

    #[test]
    fn render_escapes_and_round_trips() {
        let r = Registry::new();
        r.counter(
            "edge_escape_total",
            "help with \\ backslash\nand newline",
            &[("path", "a\"b\\c\nd")],
        )
        .add(7);
        r.gauge("edge_gauge", "a gauge", &[]).set(-1.25);
        let s = r.summary("edge_latency_ns", "latency", &[("stage", "pricing")]);
        s.observe(100);
        s.observe(200);
        let text = r.render();
        assert!(text.contains("# TYPE edge_escape_total counter"));
        assert!(text.contains("# TYPE edge_gauge gauge"));
        assert!(text.contains("# TYPE edge_latency_ns summary"));
        assert!(text.contains("\\\"b\\\\c\\nd"));

        let parsed = parse_exposition(&text).expect("rendered output parses");
        assert_eq!(
            parsed.sample("edge_escape_total", &[("path", "a\"b\\c\nd")]),
            Some(7.0)
        );
        assert_eq!(parsed.sample("edge_gauge", &[]), Some(-1.25));
        assert_eq!(
            parsed.sample("edge_latency_ns_sum", &[("stage", "pricing")]),
            Some(300.0)
        );
        assert_eq!(
            parsed.sample("edge_latency_ns_count", &[("stage", "pricing")]),
            Some(2.0)
        );
        let fam = &parsed.families["edge_latency_ns"];
        assert_eq!(fam.kind.as_deref(), Some("summary"));
        assert_eq!(fam.help.as_deref(), Some("latency"));
        // Quantile children resolved into the summary family.
        assert_eq!(fam.samples.len(), 3 + 2);

        validate_exposition(&text).expect("rendered output validates");
    }

    #[test]
    fn validator_rejects_malformed_input() {
        assert!(parse_exposition("bad-name 1\n").is_err());
        assert!(parse_exposition("x{unterminated=\"v 1\n").is_err());
        assert!(parse_exposition("x{a=\"1\",a=\"2\"} 1\n").is_err());
        assert!(parse_exposition("x notanumber\n").is_err());
        assert!(parse_exposition("# TYPE x nonsense\nx 1\n").is_err());
        // HELP after samples.
        assert!(parse_exposition("x 1\n# HELP x late\n").is_err());
        // Samples without HELP/TYPE parse but do not validate.
        assert!(parse_exposition("x 1\n").is_ok());
        assert!(validate_exposition("x 1\n").is_err());
        // Negative counters rejected by the validator.
        assert!(validate_exposition("# HELP x h\n# TYPE x counter\nx -1\n").is_err());
        // Interleaved families rejected.
        assert!(parse_exposition("a 1\nb 1\na 2\n").is_err());
    }

    #[test]
    fn parser_accepts_timestamps_and_inf() {
        let parsed =
            parse_exposition("# HELP x h\n# TYPE x gauge\nx{l=\"v\"} +Inf 1700000000\n").unwrap();
        assert_eq!(parsed.sample("x", &[("l", "v")]), Some(f64::INFINITY));
        let (fams, samples) = validate_exposition("# HELP x h\n# TYPE x gauge\nx 1\n").unwrap();
        assert_eq!((fams, samples), (1, 1));
    }

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("edge_registry_selftest_total", "self test", &[]);
        let before = c.get();
        c.incr();
        assert!(global().render().contains("edge_registry_selftest_total"));
        assert_eq!(c.get(), before + 1);
    }
}
