//! Ambient deterministic span profiler.
//!
//! A process-global hierarchical timing layer with a hard split between
//! what is **deterministic** and what is **measured**:
//!
//! * Span *structure* — names, nesting, call counts, and per-span
//!   counters recorded with [`ctr`] — depends only on the workload, so
//!   two runs of the same instance produce the same tree at any
//!   `--pricing-threads` / `--shards` setting. [`SpanTree::flush_into`]
//!   writes this side into a collector's deterministic JSONL section
//!   (one `span` event per node, DFS order).
//! * Wall-clock durations and engine diagnostics recorded with [`diag`]
//!   / [`diag_set`] — lane widths, head-read totals, adaptive-pool
//!   decisions — are machine- and knob-dependent. They land only in the
//!   `"section":"profile"` tail (one `span.profile` entry per node).
//!
//! The layer mirrors the ambient-install pattern of
//! `edge_bench::profile`: entry points call [`install`] once,
//! instrumented code calls [`enter`] / [`ctr`] / [`diag`] without
//! threading a handle through every signature, and a disabled profiler
//! costs one relaxed atomic load per call site. Spans are a
//! *calling-thread* convention: worker threads inside the pricing pool
//! never open spans or bump counters — their results are absorbed on
//! the coordinating thread in deterministic order, which is what keeps
//! the tree identical at any thread count.
//!
//! Independently of tree collection, [`set_live`] feeds per-stage
//! duration summaries and engine gauges into the process
//! [`registry`](crate::registry) (`edge_profile_*` families) so a
//! `serve` / `federate` daemon can expose stage cost in flight.

use crate::collector::Collector;
use crate::event::Level;
use crate::registry::{global, Gauge, Summary};
use crate::value::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Mode bit: aggregate spans into the ambient [`SpanTree`].
const MODE_TREE: u8 = 0b01;
/// Mode bit: feed `edge_profile_*` registry families on span exit.
const MODE_LIVE: u8 = 0b10;

static MODE: AtomicU8 = AtomicU8::new(0);
static TREE: Mutex<Option<SpanTree>> = Mutex::new(None);
static LIVE: OnceLock<Live> = OnceLock::new();

struct Live {
    open_spans: Arc<Gauge>,
    lanes: Arc<Gauge>,
    lane_occupancy: Arc<Gauge>,
    stages: Mutex<BTreeMap<&'static str, Arc<Summary>>>,
}

fn live() -> &'static Live {
    LIVE.get_or_init(|| {
        let r = global();
        Live {
            open_spans: r.gauge(
                "edge_profile_open_spans",
                "Profiler spans currently open on any thread",
                &[],
            ),
            lanes: r.gauge(
                "edge_profile_lanes",
                "Lanes in the most recently built selection arena",
                &[],
            ),
            lane_occupancy: r.gauge(
                "edge_profile_lane_occupancy",
                "Mean bids per lane in the most recently built arena",
                &[],
            ),
            stages: Mutex::new(BTreeMap::new()),
        }
    })
}

fn stage_summary(name: &'static str) -> Arc<Summary> {
    let handles = live();
    let mut stages = handles.stages.lock().expect("spans live lock");
    stages
        .entry(name)
        .or_insert_with(|| {
            global().summary(
                "edge_profile_stage_ns",
                "Wall-clock nanoseconds per profiler span, by stage",
                &[("stage", name)],
            )
        })
        .clone()
}

/// Registers every `edge_profile_*` family (with the pipeline's known
/// stage labels) so a fresh scrape exposes them at zero before the
/// first instrumented run.
pub fn preregister() {
    live();
    for stage in [
        "msoa",
        "round",
        "patch",
        "ssam",
        "selection",
        "arena.build",
        "merge",
        "pricing",
        "backfill",
        "service.apply",
        "fed.deliver",
    ] {
        stage_summary(stage);
    }
}

/// Starts collecting spans into a fresh ambient [`SpanTree`],
/// replacing any previous one. Only the installing thread's spans are
/// recorded: the tree *enforces* the calling-thread convention, so a
/// worker pool running instrumented code cannot perturb the structure.
pub fn install() {
    *TREE.lock().expect("spans tree lock") = Some(SpanTree::new());
    MODE.fetch_or(MODE_TREE, Ordering::SeqCst);
}

/// Runs `f` on the tree iff one is installed and the caller is the
/// thread that installed it.
fn with_tree(f: impl FnOnce(&mut SpanTree)) {
    if let Some(tree) = TREE.lock().expect("spans tree lock").as_mut() {
        if tree.owner == std::thread::current().id() {
            f(tree);
        }
    }
}

/// Stops tree collection and returns the aggregated tree, if one was
/// installed.
pub fn uninstall() -> Option<SpanTree> {
    MODE.fetch_and(!MODE_TREE, Ordering::SeqCst);
    TREE.lock().expect("spans tree lock").take()
}

/// Enables or disables live `edge_profile_*` registry feeding
/// (independent of tree collection).
pub fn set_live(on: bool) {
    if on {
        live();
        MODE.fetch_or(MODE_LIVE, Ordering::SeqCst);
    } else {
        MODE.fetch_and(!MODE_LIVE, Ordering::SeqCst);
    }
}

/// `true` when either tree collection or live feeding is on (the
/// instrumentation fast path).
pub fn is_enabled() -> bool {
    MODE.load(Ordering::Relaxed) != 0
}

/// Opens a span named `name` under the currently open span (or at the
/// top level). Returns a guard that records the span's wall-clock
/// duration on drop. A no-op costing one atomic load when the profiler
/// is fully disabled.
pub fn enter(name: &'static str) -> Span {
    let mode = MODE.load(Ordering::Relaxed);
    if mode == 0 {
        return Span { active: None };
    }
    let mut node = None;
    if mode & MODE_TREE != 0 {
        with_tree(|tree| node = Some(tree.enter(name)));
    }
    let live_on = mode & MODE_LIVE != 0;
    if live_on {
        live().open_spans.add(1.0);
    }
    Span {
        active: Some(Active {
            name,
            start: Instant::now(),
            node,
            live: live_on,
        }),
    }
}

/// Adds `delta` to the deterministic counter `key` on the currently
/// open span. Counters must be knob-invariant facts (workload shape,
/// proven-deterministic iteration counts); anything machine- or
/// knob-dependent belongs in [`diag`].
pub fn ctr(key: &'static str, delta: u64) {
    if MODE.load(Ordering::Relaxed) & MODE_TREE == 0 {
        return;
    }
    with_tree(|tree| tree.add(key, delta, Side::Counter));
}

/// Adds `delta` to the profile-side diagnostic `key` on the currently
/// open span (exported only in the `"section":"profile"` tail).
pub fn diag(key: &'static str, delta: u64) {
    if MODE.load(Ordering::Relaxed) & MODE_TREE == 0 {
        return;
    }
    with_tree(|tree| tree.add(key, delta, Side::Diag));
}

/// Sets (overwrites) the profile-side diagnostic `key` on the currently
/// open span — for last-decision facts like the adaptive pool size,
/// where accumulation would be meaningless.
pub fn diag_set(key: &'static str, value: u64) {
    if MODE.load(Ordering::Relaxed) & MODE_TREE == 0 {
        return;
    }
    with_tree(|tree| tree.add(key, value, Side::DiagSet));
}

/// Attributes externally measured work to a child of the currently
/// open span (or the top level), as if it had been entered once per
/// sample: the aggregated node gains `samples_ns.len()` calls and the
/// summed nanoseconds. Live mode observes every sample into the
/// stage's `edge_profile_stage_ns` summary. This is how fork–join
/// harnesses that time cells on worker threads report through the
/// calling-thread span layer.
pub fn absorb(name: &'static str, samples_ns: &[u64]) {
    let mode = MODE.load(Ordering::Relaxed);
    if mode == 0 || samples_ns.is_empty() {
        return;
    }
    if mode & MODE_TREE != 0 {
        with_tree(|tree| tree.absorb(name, samples_ns.len() as u64, samples_ns.iter().sum()));
    }
    if mode & MODE_LIVE != 0 {
        let summary = stage_summary(name);
        for &ns in samples_ns {
            summary.observe(ns);
        }
    }
}

/// Temporarily halts tree collection (on every thread) until the guard
/// drops; live feeding is unaffected. A fork–join harness wraps its
/// worker pool in this so a sweep's cells record the same (absent)
/// structure whether they run inline on the caller or on workers —
/// their measured time re-enters the tree via [`absorb`].
#[must_use]
pub fn suppress_tree() -> TreeSuppression {
    let prev = MODE.fetch_and(!MODE_TREE, Ordering::SeqCst);
    TreeSuppression {
        was_on: prev & MODE_TREE != 0,
    }
}

/// Guard returned by [`suppress_tree`]; restores collection on drop.
#[derive(Debug)]
pub struct TreeSuppression {
    was_on: bool,
}

impl Drop for TreeSuppression {
    fn drop(&mut self) {
        if self.was_on {
            MODE.fetch_or(MODE_TREE, Ordering::SeqCst);
        }
    }
}

/// Publishes arena lane gauges (`edge_profile_lanes`,
/// `edge_profile_lane_occupancy`) when live feeding is on.
pub fn lane_gauges(lanes: u64, entries: u64) {
    if MODE.load(Ordering::Relaxed) & MODE_LIVE == 0 {
        return;
    }
    let handles = live();
    handles.lanes.set(lanes as f64);
    handles.lane_occupancy.set(if lanes > 0 {
        entries as f64 / lanes as f64
    } else {
        0.0
    });
}

/// RAII handle returned by [`enter`].
#[derive(Debug)]
pub struct Span {
    active: Option<Active>,
}

#[derive(Debug)]
struct Active {
    name: &'static str,
    start: Instant,
    node: Option<usize>,
    live: bool,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let nanos = active.start.elapsed().as_nanos() as u64;
        if let Some(idx) = active.node {
            if let Some(tree) = TREE.lock().expect("spans tree lock").as_mut() {
                tree.exit(idx, nanos);
            }
        }
        if active.live {
            stage_summary(active.name).observe(nanos);
            live().open_spans.add(-1.0);
        }
    }
}

/// Which side of the determinism contract a key lands on.
enum Side {
    Counter,
    Diag,
    DiagSet,
}

/// One aggregated span node. Repeated `enter`s of the same name under
/// the same parent accumulate into one node (three MSOA rounds are one
/// `round` node with `calls = 3`).
#[derive(Debug, Clone)]
pub struct Node {
    name: &'static str,
    parent: usize,
    children: Vec<usize>,
    /// Times this span was entered.
    pub calls: u64,
    /// Deterministic counters, in first-touch order.
    pub counters: Vec<(&'static str, u64)>,
    /// Profile-side diagnostics, in first-touch order.
    pub diag: Vec<(&'static str, u64)>,
    /// Accumulated wall-clock nanoseconds (including children).
    pub total_ns: u64,
}

/// The aggregated span forest produced by [`uninstall`].
///
/// Node 0 is a synthetic root that is never exported; top-level spans
/// are its children.
#[derive(Debug)]
pub struct SpanTree {
    nodes: Vec<Node>,
    stack: Vec<usize>,
    /// The installing thread — the only one whose spans are recorded.
    owner: std::thread::ThreadId,
}

/// What weights a folded-stack export ([`SpanTree::folded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FoldWeight {
    /// Self nanoseconds — real flamegraph weights, run-dependent.
    SelfNs,
    /// Call counts — structural weights, byte-identical across runs of
    /// the same workload.
    Calls,
}

impl SpanTree {
    fn new() -> Self {
        SpanTree {
            nodes: vec![Node {
                name: "",
                parent: 0,
                children: Vec::new(),
                calls: 0,
                counters: Vec::new(),
                diag: Vec::new(),
                total_ns: 0,
            }],
            stack: vec![0],
            owner: std::thread::current().id(),
        }
    }

    /// Finds or creates the child of `parent` named `name`.
    fn child_of(&mut self, parent: usize, name: &'static str) -> usize {
        let existing = self.nodes[parent]
            .children
            .iter()
            .copied()
            .find(|&c| self.nodes[c].name == name);
        existing.unwrap_or_else(|| {
            let idx = self.nodes.len();
            self.nodes.push(Node {
                name,
                parent,
                children: Vec::new(),
                calls: 0,
                counters: Vec::new(),
                diag: Vec::new(),
                total_ns: 0,
            });
            self.nodes[parent].children.push(idx);
            idx
        })
    }

    fn enter(&mut self, name: &'static str) -> usize {
        let parent = *self.stack.last().expect("span stack never empty");
        let idx = self.child_of(parent, name);
        self.nodes[idx].calls += 1;
        self.stack.push(idx);
        idx
    }

    fn exit(&mut self, idx: usize, nanos: u64) {
        // A replacement tree installed between enter and drop may be
        // smaller than the index the guard captured.
        if idx >= self.nodes.len() {
            return;
        }
        self.nodes[idx].total_ns += nanos;
        // Guards drop in reverse entry order on one thread; tolerate a
        // mismatch (e.g. install() between enter and drop) by popping
        // only our own frame.
        if self.stack.last() == Some(&idx) {
            self.stack.pop();
        }
    }

    fn absorb(&mut self, name: &'static str, calls: u64, total_ns: u64) {
        let parent = *self.stack.last().expect("span stack never empty");
        let idx = self.child_of(parent, name);
        self.nodes[idx].calls += calls;
        self.nodes[idx].total_ns += total_ns;
    }

    fn add(&mut self, key: &'static str, delta: u64, side: Side) {
        let top = *self.stack.last().expect("span stack never empty");
        if top == 0 {
            return; // no open span: nowhere deterministic to attribute
        }
        let node = &mut self.nodes[top];
        let list = match side {
            Side::Counter => &mut node.counters,
            Side::Diag | Side::DiagSet => &mut node.diag,
        };
        match list.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => match side {
                Side::DiagSet => *v = delta,
                _ => *v += delta,
            },
            None => list.push((key, delta)),
        }
    }

    /// DFS pre-order over real nodes (the synthetic root excluded).
    fn dfs(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.nodes.len().saturating_sub(1));
        let mut pending: Vec<usize> = self.nodes[0].children.iter().rev().copied().collect();
        while let Some(idx) = pending.pop() {
            order.push(idx);
            pending.extend(self.nodes[idx].children.iter().rev());
        }
        order
    }

    /// The dotted span path of node `idx` (root excluded).
    fn path(&self, idx: usize) -> String {
        let mut parts = Vec::new();
        let mut cur = idx;
        while cur != 0 {
            parts.push(self.nodes[cur].name);
            cur = self.nodes[cur].parent;
        }
        parts.reverse();
        parts.join(".")
    }

    /// Wall-clock nanoseconds spent in `idx` itself, excluding children.
    fn self_ns(&self, idx: usize) -> u64 {
        let children: u64 = self.nodes[idx]
            .children
            .iter()
            .map(|&c| self.nodes[c].total_ns)
            .sum();
        self.nodes[idx].total_ns.saturating_sub(children)
    }

    /// Number of real (exported) spans.
    pub fn len(&self) -> usize {
        self.nodes.len() - 1
    }

    /// `true` when no span was ever entered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flattened views of every span in DFS order.
    pub fn views(&self) -> Vec<SpanView> {
        self.dfs()
            .into_iter()
            .map(|idx| SpanView {
                path: self.path(idx),
                name: self.nodes[idx].name,
                depth: {
                    let mut d = 0;
                    let mut cur = self.nodes[idx].parent;
                    while cur != 0 {
                        d += 1;
                        cur = self.nodes[cur].parent;
                    }
                    d
                },
                calls: self.nodes[idx].calls,
                total_ns: self.nodes[idx].total_ns,
                self_ns: self.self_ns(idx),
                counters: self.nodes[idx].counters.clone(),
                diag: self.nodes[idx].diag.clone(),
            })
            .collect()
    }

    /// Writes the tree into `collector`: one deterministic `span` event
    /// per node (path, calls, counters — byte-identical at any knob
    /// setting) and one `span.profile` tail entry per node (total/self
    /// nanoseconds plus diagnostics).
    pub fn flush_into(&self, collector: &Collector) {
        let order = self.dfs();
        for &idx in &order {
            let node = &self.nodes[idx];
            let mut fields = vec![
                ("path", Value::from(self.path(idx))),
                ("calls", Value::from(node.calls)),
            ];
            for &(k, v) in &node.counters {
                fields.push((k, Value::from(v)));
            }
            use crate::collector::Sink as _;
            collector.emit(Level::Info, "span", fields);
        }
        for &idx in &order {
            let node = &self.nodes[idx];
            let mut fields = vec![
                ("path", Value::from(self.path(idx))),
                ("total_ns", Value::from(node.total_ns)),
                ("self_ns", Value::from(self.self_ns(idx))),
            ];
            for &(k, v) in &node.diag {
                fields.push((k, Value::from(v)));
            }
            collector.record_profile("span.profile", fields);
        }
    }

    /// Flamegraph-compatible folded stacks: one `a;b;c weight` line per
    /// span in DFS order. With [`FoldWeight::Calls`] the output is
    /// byte-identical across runs of the same workload.
    pub fn folded(&self, weight: FoldWeight) -> String {
        let mut out = String::new();
        for idx in self.dfs() {
            let mut parts = Vec::new();
            let mut cur = idx;
            while cur != 0 {
                parts.push(self.nodes[cur].name);
                cur = self.nodes[cur].parent;
            }
            parts.reverse();
            let w = match weight {
                FoldWeight::SelfNs => self.self_ns(idx),
                FoldWeight::Calls => self.nodes[idx].calls,
            };
            out.push_str(&parts.join(";"));
            out.push(' ');
            out.push_str(&w.to_string());
            out.push('\n');
        }
        out
    }

    /// Fraction of top-level wall time attributed to named sub-stages:
    /// `1 − Σ self(top) / Σ total(top)`. `None` for an empty tree or
    /// one with zero recorded time.
    pub fn attributed(&self) -> Option<f64> {
        let roots = &self.nodes[0].children;
        let total: u64 = roots.iter().map(|&r| self.nodes[r].total_ns).sum();
        if total == 0 {
            return None;
        }
        let root_self: u64 = roots.iter().map(|&r| self.self_ns(r)).sum();
        Some(1.0 - root_self as f64 / total as f64)
    }

    /// Renders the ASCII waterfall: indentation mirrors nesting, with
    /// total/self times and percentages per span, the attribution line,
    /// and the per-span counter / diagnostic sections.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let grand: u64 = self.nodes[0]
            .children
            .iter()
            .map(|&r| self.nodes[r].total_ns)
            .sum();
        let grand = grand.max(1);
        out.push_str(&format!(
            "{:<44} {:>8} {:>12} {:>12} {:>7} {:>7}\n",
            "span", "calls", "total", "self", "total%", "self%"
        ));
        let order = self.dfs();
        for &idx in &order {
            let node = &self.nodes[idx];
            let mut depth = 0usize;
            let mut cur = node.parent;
            while cur != 0 {
                depth += 1;
                cur = self.nodes[cur].parent;
            }
            let label = format!("{}{}", "  ".repeat(depth), node.name);
            let self_ns = self.self_ns(idx);
            out.push_str(&format!(
                "{:<44} {:>8} {:>12} {:>12} {:>6.1}% {:>6.1}%\n",
                label,
                node.calls,
                format_ns(node.total_ns),
                format_ns(self_ns),
                100.0 * node.total_ns as f64 / grand as f64,
                100.0 * self_ns as f64 / grand as f64,
            ));
        }
        match self.attributed() {
            Some(frac) => out.push_str(&format!(
                "\nattributed: {:.1}% of {} inside named sub-stages\n",
                100.0 * frac,
                format_ns(grand)
            )),
            None => out.push_str("\nattributed: n/a (no spans recorded)\n"),
        }
        let with_counters: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&i| !self.nodes[i].counters.is_empty())
            .collect();
        if !with_counters.is_empty() {
            out.push_str("\ndeterministic counters\n");
            for idx in with_counters {
                let pairs = self.nodes[idx]
                    .counters
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                out.push_str(&format!("  {:<42} {}\n", self.path(idx), pairs));
            }
        }
        let with_diag: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&i| !self.nodes[i].diag.is_empty())
            .collect();
        if !with_diag.is_empty() {
            out.push_str("\nengine diagnostics (profile section)\n");
            for idx in with_diag {
                let pairs = self.nodes[idx]
                    .diag
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                out.push_str(&format!("  {:<42} {}\n", self.path(idx), pairs));
            }
        }
        out
    }
}

/// A flattened, export-friendly view of one span node.
#[derive(Debug, Clone)]
pub struct SpanView {
    /// Dotted path from the top level.
    pub path: String,
    /// Leaf name.
    pub name: &'static str,
    /// Nesting depth (top-level spans are 0).
    pub depth: usize,
    /// Times entered.
    pub calls: u64,
    /// Wall-clock nanoseconds including children.
    pub total_ns: u64,
    /// Wall-clock nanoseconds excluding children.
    pub self_ns: u64,
    /// Deterministic counters.
    pub counters: Vec<(&'static str, u64)>,
    /// Profile-side diagnostics.
    pub diag: Vec<(&'static str, u64)>,
}

/// Human duration, stable width-ish: ns under 10µs, then µs/ms/s.
fn format_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The profiler is process-global ambient state; serialize tests.
    static GUARD: StdMutex<()> = StdMutex::new(());

    fn reset() {
        let _ = uninstall();
        set_live(false);
    }

    #[test]
    fn disabled_profiler_is_inert() {
        let _g = GUARD.lock().unwrap();
        reset();
        assert!(!is_enabled());
        let span = enter("x");
        ctr("k", 1);
        diag("d", 2);
        drop(span);
        assert!(uninstall().is_none());
    }

    #[test]
    fn repeated_spans_aggregate_into_one_node() {
        let _g = GUARD.lock().unwrap();
        reset();
        install();
        {
            let _run = enter("run");
            for _ in 0..3 {
                let _round = enter("round");
                ctr("winners", 2);
                diag("lanes", 4);
            }
        }
        let tree = uninstall().expect("tree installed");
        let views = tree.views();
        assert_eq!(views.len(), 2);
        assert_eq!(views[0].path, "run");
        assert_eq!(views[0].calls, 1);
        assert_eq!(views[1].path, "run.round");
        assert_eq!(views[1].calls, 3);
        assert_eq!(views[1].counters, vec![("winners", 6)]);
        assert_eq!(views[1].diag, vec![("lanes", 12)]);
    }

    #[test]
    fn diag_set_overwrites_instead_of_accumulating() {
        let _g = GUARD.lock().unwrap();
        reset();
        install();
        {
            let _s = enter("pricing");
            diag_set("pool_threads", 2);
            diag_set("pool_threads", 4);
        }
        let tree = uninstall().unwrap();
        assert_eq!(tree.views()[0].diag, vec![("pool_threads", 4)]);
    }

    #[test]
    fn flush_splits_counters_from_diagnostics() {
        let _g = GUARD.lock().unwrap();
        reset();
        install();
        {
            let _a = enter("a");
            ctr("scans", 7);
            diag("head_reads", 21);
            let _b = enter("b");
        }
        let tree = uninstall().unwrap();
        let collector = Collector::new();
        tree.flush_into(&collector);
        let det = collector.deterministic_jsonl();
        assert!(det.contains("\"event\":\"span\""), "{det}");
        assert!(det.contains("\"path\":\"a\""), "{det}");
        assert!(det.contains("\"path\":\"a.b\""), "{det}");
        assert!(det.contains("\"scans\":7"), "{det}");
        assert!(!det.contains("head_reads"), "{det}");
        assert!(!det.contains("_ns"), "durations must stay out: {det}");
        let full = collector.to_jsonl();
        assert!(full.contains("\"head_reads\":21"), "{full}");
        assert!(full.contains("span.profile"), "{full}");
    }

    #[test]
    fn folded_calls_weight_is_structural() {
        let _g = GUARD.lock().unwrap();
        reset();
        install();
        {
            let _a = enter("a");
            for _ in 0..2 {
                let _b = enter("b");
            }
        }
        let tree = uninstall().unwrap();
        assert_eq!(tree.folded(FoldWeight::Calls), "a 1\na;b 2\n");
        let ns = tree.folded(FoldWeight::SelfNs);
        assert!(ns.starts_with("a ") && ns.contains("\na;b "), "{ns}");
    }

    #[test]
    fn attribution_counts_time_under_named_stages() {
        let _g = GUARD.lock().unwrap();
        reset();
        install();
        {
            let _root = enter("root");
            let _child = enter("child");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let tree = uninstall().unwrap();
        let frac = tree.attributed().expect("timed spans");
        assert!(frac > 0.5, "child dominates: {frac}");
        let rendered = tree.render();
        assert!(rendered.contains("attributed:"), "{rendered}");
        assert!(rendered.contains("root"), "{rendered}");
        assert!(rendered.contains("  child"), "{rendered}");
    }

    #[test]
    fn worker_thread_spans_are_ignored() {
        let _g = GUARD.lock().unwrap();
        reset();
        install();
        {
            let _main = enter("main");
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _w = enter("worker");
                    ctr("stray", 1);
                })
                .join()
                .unwrap();
            });
        }
        let tree = uninstall().unwrap();
        let views = tree.views();
        assert_eq!(views.len(), 1, "only the installing thread records");
        assert_eq!(views[0].path, "main");
        assert!(views[0].counters.is_empty());
    }

    #[test]
    fn absorb_aggregates_external_samples() {
        let _g = GUARD.lock().unwrap();
        reset();
        install();
        {
            let _s = enter("sweep");
            absorb("fig", &[1_000, 2_000, 3_000]);
            absorb("fig", &[4_000]);
        }
        let tree = uninstall().unwrap();
        let views = tree.views();
        assert_eq!(views[1].path, "sweep.fig");
        assert_eq!(views[1].calls, 4);
        assert_eq!(views[1].total_ns, 10_000);
    }

    #[test]
    fn suppression_hides_spans_until_dropped() {
        let _g = GUARD.lock().unwrap();
        reset();
        install();
        {
            let quiet = suppress_tree();
            let _hidden = enter("hidden");
            drop(quiet);
        }
        {
            let _seen = enter("seen");
        }
        let tree = uninstall().unwrap();
        let views = tree.views();
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].path, "seen");
    }

    #[test]
    fn live_mode_feeds_registry_families() {
        let _g = GUARD.lock().unwrap();
        reset();
        preregister();
        set_live(true);
        {
            let _s = enter("msoa");
        }
        lane_gauges(8, 40);
        set_live(false);
        let text = global().render();
        assert!(text.contains("edge_profile_stage_ns"), "{text}");
        assert!(text.contains("edge_profile_open_spans"), "{text}");
        assert!(text.contains("edge_profile_lanes"), "{text}");
        assert!(text.contains("edge_profile_lane_occupancy"), "{text}");
    }
}
