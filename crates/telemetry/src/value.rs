//! The field-value data model of an event.
//!
//! A [`Value`] is the smallest JSON-compatible model that covers what
//! auction and simulator instrumentation needs to record: strings,
//! integers, floats, and booleans. Rendering is **deterministic**:
//! integers print as decimal, floats use Rust's shortest round-trip
//! `Display` (so a trace parsed back yields the bit-identical `f64`),
//! and non-finite floats — which JSON cannot carry — print as `null`.

use std::fmt;

/// One field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string.
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (non-finite values render as JSON `null`).
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// Writes the value as a JSON scalar.
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::Str(s) => write_json_string(s, out),
            Value::U64(u) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{u}"));
            }
            Value::I64(i) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
            }
            Value::F64(f) => {
                if f.is_finite() {
                    // Rust's float Display is the shortest string that
                    // round-trips, so traces are both deterministic and
                    // exact.
                    let _ = fmt::Write::write_fmt(out, format_args!("{f}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }

    /// The float view of a numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(u) => Some(u as f64),
            Value::I64(i) => Some(i as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }

    /// The string view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Escapes and quotes a string per JSON.
pub(crate) fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<u64> for Value {
    fn from(u: u64) -> Self {
        Value::U64(u)
    }
}
impl From<u32> for Value {
    fn from(u: u32) -> Self {
        Value::U64(u64::from(u))
    }
}
impl From<usize> for Value {
    fn from(u: usize) -> Self {
        Value::U64(u as u64)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::I64(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::I64(i64::from(i))
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::F64(f)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json(v: Value) -> String {
        let mut s = String::new();
        v.write_json(&mut s);
        s
    }

    #[test]
    fn scalars_render_as_json() {
        assert_eq!(json(Value::from(3u64)), "3");
        assert_eq!(json(Value::from(-2i64)), "-2");
        assert_eq!(json(Value::from(true)), "true");
        assert_eq!(json(Value::from("hi")), "\"hi\"");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1.0 / 3.0, 6.6, 1e-300, -0.0, 123456.789] {
            let text = json(Value::from(f));
            let back: f64 = text.parse().unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} vs {text}");
        }
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(json(Value::from(f64::INFINITY)), "null");
        assert_eq!(json(Value::from(f64::NAN)), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json(Value::from("a\"b\\c\nd")), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json(Value::from("\u{1}")), "\"\\u0001\"");
    }
}
