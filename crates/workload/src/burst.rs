//! Bursty arrivals: a two-state Markov-modulated Poisson process.
//!
//! The paper's evaluation uses plain Poisson arrivals, but its
//! motivation (§I) is precisely the *burst*: a microservice suddenly
//! needing to scale up. This module provides the standard two-state
//! MMPP — a `Normal`/`Burst` Markov chain where the burst state
//! multiplies the Poisson rate — so examples and stress tests can
//! exercise the mechanism under the traffic pattern that motivates it.
//!
//! # Examples
//!
//! ```
//! use edge_workload::burst::{BurstProcess, BurstConfig};
//! use edge_common::rng::seeded_rng;
//!
//! let mut rng = seeded_rng(3);
//! let mut p = BurstProcess::new(BurstConfig::default());
//! let draws: Vec<u64> = (0..100).map(|_| p.sample(&mut rng, 5.0)).collect();
//! assert!(draws.iter().sum::<u64>() > 0);
//! ```

use crate::sampler::poisson;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the two-state MMPP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstConfig {
    /// Probability of entering a burst from the normal state, per round.
    pub enter_burst: f64,
    /// Probability of leaving a burst, per round.
    pub exit_burst: f64,
    /// Rate multiplier while bursting.
    pub burst_multiplier: f64,
}

impl Default for BurstConfig {
    /// Bursts are rare (5%/round), short (mean 2.5 rounds), and intense
    /// (4× rate).
    fn default() -> Self {
        BurstConfig {
            enter_burst: 0.05,
            exit_burst: 0.4,
            burst_multiplier: 4.0,
        }
    }
}

/// The current modulation state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BurstState {
    /// Baseline traffic.
    Normal,
    /// Elevated traffic.
    Burst,
}

/// A stateful MMPP sampler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurstProcess {
    config: BurstConfig,
    state: BurstState,
}

impl BurstProcess {
    /// Creates a process in the normal state.
    ///
    /// # Panics
    ///
    /// Panics if the transition probabilities are outside `[0, 1]` or
    /// the multiplier is not at least 1.
    pub fn new(config: BurstConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.enter_burst) && (0.0..=1.0).contains(&config.exit_burst),
            "transition probabilities must lie in [0, 1]"
        );
        assert!(
            config.burst_multiplier >= 1.0 && config.burst_multiplier.is_finite(),
            "burst multiplier must be >= 1"
        );
        BurstProcess {
            config,
            state: BurstState::Normal,
        }
    }

    /// The current state.
    pub fn state(&self) -> BurstState {
        self.state
    }

    /// Advances the Markov chain one round and draws the round's arrival
    /// count at base rate `mean`.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R, mean: f64) -> u64 {
        self.state = match self.state {
            BurstState::Normal if rng.gen::<f64>() < self.config.enter_burst => BurstState::Burst,
            BurstState::Burst if rng.gen::<f64>() < self.config.exit_burst => BurstState::Normal,
            s => s,
        };
        let rate = match self.state {
            BurstState::Normal => mean,
            BurstState::Burst => mean * self.config.burst_multiplier,
        };
        poisson(rng, rate)
    }

    /// The stationary probability of being in the burst state.
    pub fn stationary_burst_probability(&self) -> f64 {
        let e = self.config.enter_burst;
        let x = self.config.exit_burst;
        if e + x == 0.0 {
            0.0
        } else {
            e / (e + x)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_common::rng::seeded_rng;

    #[test]
    fn bursts_raise_the_long_run_mean() {
        let mut rng = seeded_rng(61);
        let mut p = BurstProcess::new(BurstConfig {
            enter_burst: 0.2,
            exit_burst: 0.2,
            burst_multiplier: 5.0,
        });
        let n = 6000;
        let total: u64 = (0..n).map(|_| p.sample(&mut rng, 5.0)).sum();
        let mean = total as f64 / n as f64;
        // Stationary mean = 5 · (0.5·1 + 0.5·5) = 15.
        assert!((mean - 15.0).abs() < 1.5, "long-run mean {mean}");
    }

    #[test]
    fn never_bursting_is_plain_poisson() {
        let mut rng = seeded_rng(62);
        let mut p = BurstProcess::new(BurstConfig {
            enter_burst: 0.0,
            exit_burst: 1.0,
            burst_multiplier: 10.0,
        });
        let n = 3000;
        let mean = (0..n).map(|_| p.sample(&mut rng, 5.0)).sum::<u64>() as f64 / n as f64;
        assert!((mean - 5.0).abs() < 0.5, "mean {mean}");
        assert_eq!(p.state(), BurstState::Normal);
    }

    #[test]
    fn stationary_probability_formula() {
        let p = BurstProcess::new(BurstConfig {
            enter_burst: 0.1,
            exit_burst: 0.3,
            burst_multiplier: 2.0,
        });
        assert!((p.stationary_burst_probability() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn state_transitions_occur() {
        let mut rng = seeded_rng(63);
        let mut p = BurstProcess::new(BurstConfig {
            enter_burst: 0.5,
            exit_burst: 0.5,
            burst_multiplier: 2.0,
        });
        let mut saw_burst = false;
        let mut saw_normal = false;
        for _ in 0..100 {
            p.sample(&mut rng, 1.0);
            match p.state() {
                BurstState::Burst => saw_burst = true,
                BurstState::Normal => saw_normal = true,
            }
        }
        assert!(saw_burst && saw_normal);
    }

    #[test]
    #[should_panic(expected = "burst multiplier")]
    fn rejects_shrinking_multiplier() {
        BurstProcess::new(BurstConfig {
            enter_burst: 0.1,
            exit_burst: 0.1,
            burst_multiplier: 0.5,
        });
    }

    #[test]
    #[should_panic(expected = "transition probabilities")]
    fn rejects_invalid_probability() {
        BurstProcess::new(BurstConfig {
            enter_burst: 1.5,
            exit_burst: 0.1,
            burst_multiplier: 2.0,
        });
    }
}
