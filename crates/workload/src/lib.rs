//! Synthetic workload generation for the `edge-market` experiments.
//!
//! The paper's evaluation (§V-A) draws every stochastic input from simple
//! parametric distributions: Poisson request arrivals (mean 5 for
//! delay-sensitive and 10 for delay-tolerant microservices), uniform bid
//! prices in \[10, 35\], and uniform demand targets in \[10, 40\]. This
//! crate reproduces those inputs from scratch:
//!
//! * [`sampler`] — Poisson, exponential, normal, and uniform samplers
//!   built directly on `rand::Rng`.
//! * [`request`] — end-user requests and their latency classes.
//! * [`trace`] — seeded, serializable multi-round request traces (the
//!   stand-in for the paper's unreleased "real-world data traces").
//! * [`params`] — the §V-A parameter pack, one value per figure knob.
//!
//! # Examples
//!
//! ```
//! use edge_workload::trace::{RequestTrace, TraceConfig};
//! use edge_common::rng::seeded_rng;
//!
//! let mut rng = seeded_rng(7);
//! let trace = RequestTrace::generate(TraceConfig::default(), &mut rng);
//! assert!(trace.total_requests() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod burst;
pub mod params;
pub mod request;
pub mod sampler;
pub mod trace;

pub use burst::{BurstConfig, BurstProcess, BurstState};
pub use params::PaperParams;
pub use request::{Request, RequestClass};
pub use trace::{RequestTrace, TraceConfig};
