//! The paper's §V-A parameter settings, as a reusable value.
//!
//! Every figure runner starts from [`PaperParams::default`] and overrides
//! the swept dimension, so the defaults below are the single source of
//! truth for "the paper's setting".

use crate::sampler::{uniform_f64, uniform_int};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameter pack matching §V-A of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaperParams {
    /// Number of end users (paper: 300).
    pub num_users: usize,
    /// Number of edge clouds / macro base stations (paper: 10).
    pub num_edge_clouds: usize,
    /// Number of microservices deployed (paper default: 25, swept 25–75).
    pub num_microservices: usize,
    /// Alternative bids each seller may submit per round, `J` (paper
    /// default: 2).
    pub bids_per_seller: usize,
    /// Number of auction rounds, `T` (paper default: 10, swept 1–15).
    pub rounds: u64,
    /// Bid prices are uniform in this inclusive range (paper: \[10, 35\]).
    pub price_range: (f64, f64),
    /// Per-round aggregate demand `X^t` is uniform in this inclusive
    /// integer range (paper: 𝔾^t ∈ \[10, 40\]).
    pub demand_range: (u64, u64),
    /// Resource units offered per bid, `a_ij^t`. The paper does not state
    /// the distribution; we default to U\[1, 10\] so that a handful of
    /// sellers covers a round's demand, matching the figures' regime where
    /// multiple winners exist per round.
    pub amount_range: (u64, u64),
    /// Long-run capacity `Θ_i` (constraint (11)): total units a seller may
    /// yield across all rounds. Unstated in the paper; defaults keep
    /// `β = min Θ_i / a_ij > 1` so MSOA's ratio `αβ/(β−1)` is finite.
    pub capacity_range: (u64, u64),
    /// Total user requests per round (paper sweeps 100 vs 200).
    pub requests_per_round: u64,
}

impl Default for PaperParams {
    fn default() -> Self {
        PaperParams {
            num_users: 300,
            num_edge_clouds: 10,
            num_microservices: 25,
            bids_per_seller: 2,
            rounds: 10,
            price_range: (10.0, 35.0),
            demand_range: (10, 40),
            amount_range: (1, 10),
            capacity_range: (20, 40),
            requests_per_round: 100,
        }
    }
}

impl PaperParams {
    /// Returns a copy with a different microservice count (the most common
    /// sweep).
    #[must_use]
    pub fn with_microservices(mut self, n: usize) -> Self {
        self.num_microservices = n;
        self
    }

    /// Returns a copy with a different number of rounds `T`.
    #[must_use]
    pub fn with_rounds(mut self, t: u64) -> Self {
        self.rounds = t;
        self
    }

    /// Returns a copy with a different bids-per-seller `J`.
    #[must_use]
    pub fn with_bids_per_seller(mut self, j: usize) -> Self {
        self.bids_per_seller = j;
        self
    }

    /// Returns a copy with a different request volume.
    #[must_use]
    pub fn with_requests(mut self, r: u64) -> Self {
        self.requests_per_round = r;
        self
    }

    /// Draws a bid price `J_ij^t` ~ U(price_range).
    pub fn draw_price<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        uniform_f64(rng, self.price_range.0, self.price_range.1)
    }

    /// Draws a per-round demand target `X^t` ~ U(demand_range).
    pub fn draw_demand<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        uniform_int(rng, self.demand_range.0, self.demand_range.1)
    }

    /// Draws a bid resource amount `a_ij^t` ~ U(amount_range).
    pub fn draw_amount<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        uniform_int(rng, self.amount_range.0, self.amount_range.1)
    }

    /// Draws a seller capacity `Θ_i` ~ U(capacity_range).
    pub fn draw_capacity<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        uniform_int(rng, self.capacity_range.0, self.capacity_range.1)
    }

    /// Draws a seller availability window `[t⁻, t⁺]` uniformly within
    /// `[0, rounds)`, with `t⁻ <= t⁺` (the paper sets both randomly in
    /// `[1, T]`).
    pub fn draw_window<R: Rng + ?Sized>(&self, rng: &mut R) -> (u64, u64) {
        let last = self.rounds.saturating_sub(1);
        let a = uniform_int(rng, 0, last);
        let b = uniform_int(rng, 0, last);
        (a.min(b), a.max(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_common::rng::seeded_rng;

    #[test]
    fn defaults_match_section_v_a() {
        let p = PaperParams::default();
        assert_eq!(p.num_users, 300);
        assert_eq!(p.num_edge_clouds, 10);
        assert_eq!(p.num_microservices, 25);
        assert_eq!(p.bids_per_seller, 2);
        assert_eq!(p.rounds, 10);
        assert_eq!(p.price_range, (10.0, 35.0));
        assert_eq!(p.demand_range, (10, 40));
    }

    #[test]
    fn builders_override_one_dimension() {
        let p = PaperParams::default()
            .with_microservices(75)
            .with_rounds(15)
            .with_bids_per_seller(4)
            .with_requests(200);
        assert_eq!(p.num_microservices, 75);
        assert_eq!(p.rounds, 15);
        assert_eq!(p.bids_per_seller, 4);
        assert_eq!(p.requests_per_round, 200);
        // Untouched dimensions keep their defaults.
        assert_eq!(p.num_users, 300);
    }

    #[test]
    fn draws_stay_in_range() {
        let p = PaperParams::default();
        let mut rng = seeded_rng(31);
        for _ in 0..500 {
            let price = p.draw_price(&mut rng);
            assert!((10.0..35.0).contains(&price));
            assert!((10..=40).contains(&p.draw_demand(&mut rng)));
            assert!((1..=10).contains(&p.draw_amount(&mut rng)));
            assert!((20..=40).contains(&p.draw_capacity(&mut rng)));
            let (lo, hi) = p.draw_window(&mut rng);
            assert!(lo <= hi && hi < p.rounds);
        }
    }

    #[test]
    fn window_handles_single_round() {
        let p = PaperParams::default().with_rounds(1);
        let mut rng = seeded_rng(32);
        assert_eq!(p.draw_window(&mut rng), (0, 0));
    }

    #[test]
    fn capacity_exceeds_amounts_so_beta_above_one() {
        // β = min Θ_i / a_ij must exceed 1 for MSOA's competitive ratio to
        // be finite; the default ranges guarantee it structurally.
        let p = PaperParams::default();
        assert!(p.capacity_range.0 > p.amount_range.1);
    }
}
