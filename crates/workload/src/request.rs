//! End-user requests and their service classes.
//!
//! The paper evaluates with two microservice types (§V-A): delay-sensitive
//! requests arrive as a Poisson process with mean 5 per round and get
//! priority; delay-tolerant requests arrive with mean 10. Each request
//! carries an amount of *work* (resource-seconds) that a microservice must
//! process.

use edge_common::id::{MicroserviceId, Round, UserId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The latency class of a request, determining its arrival rate and
/// scheduling priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestClass {
    /// Interactive traffic — Poisson mean 5 per user-round, served first.
    DelaySensitive,
    /// Batch-like traffic — Poisson mean 10 per user-round.
    DelayTolerant,
}

impl RequestClass {
    /// Mean arrivals per user per round, per §V-A of the paper.
    pub fn poisson_mean(self) -> f64 {
        match self {
            RequestClass::DelaySensitive => 5.0,
            RequestClass::DelayTolerant => 10.0,
        }
    }

    /// Scheduling priority — lower value is served earlier.
    pub fn priority(self) -> u8 {
        match self {
            RequestClass::DelaySensitive => 0,
            RequestClass::DelayTolerant => 1,
        }
    }

    /// All classes, in priority order.
    pub fn all() -> [RequestClass; 2] {
        [RequestClass::DelaySensitive, RequestClass::DelayTolerant]
    }
}

impl fmt::Display for RequestClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestClass::DelaySensitive => write!(f, "delay-sensitive"),
            RequestClass::DelayTolerant => write!(f, "delay-tolerant"),
        }
    }
}

/// A single end-user request addressed to a microservice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Originating user.
    pub user: UserId,
    /// Target microservice.
    pub target: MicroserviceId,
    /// Latency class.
    pub class: RequestClass,
    /// Round at which the request arrives.
    pub arrival: Round,
    /// Work required to serve the request, in resource-rounds (one
    /// resource unit working one full round completes 1.0 work).
    pub work: f64,
}

impl Request {
    /// Creates a request, validating the work amount.
    ///
    /// # Panics
    ///
    /// Panics if `work` is not finite or not strictly positive — a request
    /// with no work would never leave the queue and would poison waiting
    /// time statistics.
    pub fn new(
        user: UserId,
        target: MicroserviceId,
        class: RequestClass,
        arrival: Round,
        work: f64,
    ) -> Self {
        assert!(
            work.is_finite() && work > 0.0,
            "request work must be finite and positive"
        );
        Request {
            user,
            target,
            class,
            arrival,
            work,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_parameters_match_paper() {
        assert_eq!(RequestClass::DelaySensitive.poisson_mean(), 5.0);
        assert_eq!(RequestClass::DelayTolerant.poisson_mean(), 10.0);
        assert!(RequestClass::DelaySensitive.priority() < RequestClass::DelayTolerant.priority());
    }

    #[test]
    fn all_is_in_priority_order() {
        let classes = RequestClass::all();
        assert!(classes
            .windows(2)
            .all(|w| w[0].priority() <= w[1].priority()));
    }

    #[test]
    fn request_construction() {
        let r = Request::new(
            UserId::new(1),
            MicroserviceId::new(2),
            RequestClass::DelaySensitive,
            Round::new(3),
            0.5,
        );
        assert_eq!(r.target, MicroserviceId::new(2));
        assert_eq!(r.arrival.index(), 3);
    }

    #[test]
    #[should_panic(expected = "request work")]
    fn request_rejects_zero_work() {
        Request::new(
            UserId::new(0),
            MicroserviceId::new(0),
            RequestClass::DelayTolerant,
            Round::ZERO,
            0.0,
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(RequestClass::DelaySensitive.to_string(), "delay-sensitive");
        assert_eq!(RequestClass::DelayTolerant.to_string(), "delay-tolerant");
    }

    #[test]
    fn serde_round_trip() {
        let r = Request::new(
            UserId::new(4),
            MicroserviceId::new(5),
            RequestClass::DelayTolerant,
            Round::new(6),
            1.25,
        );
        let json = serde_json::to_string(&r).unwrap();
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
