//! Probability samplers implemented from scratch.
//!
//! The evaluation needs only three families — uniform (bid prices and
//! demand targets), Poisson (request arrivals per §V-A), and exponential
//! (service-time jitter). They are implemented here directly on top of
//! `rand::Rng` rather than pulling in `rand_distr`, keeping the dependency
//! surface to the approved set.

use rand::Rng;

/// Draws from a Poisson distribution with the given mean.
///
/// Uses Knuth's multiplication method for `mean < 30` and a normal
/// approximation (Box–Muller, clamped at zero) above it; the paper's
/// means are 5 and 10, so the exact branch is the hot one.
///
/// # Panics
///
/// Panics if `mean` is negative or not finite.
///
/// # Examples
///
/// ```
/// use edge_workload::sampler::poisson;
/// use edge_common::rng::seeded_rng;
///
/// let mut rng = seeded_rng(1);
/// let draws: Vec<u64> = (0..1000).map(|_| poisson(&mut rng, 5.0)).collect();
/// let mean = draws.iter().sum::<u64>() as f64 / draws.len() as f64;
/// assert!((mean - 5.0).abs() < 0.5);
/// ```
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(
        mean.is_finite() && mean >= 0.0,
        "poisson mean must be finite and >= 0"
    );
    if mean == 0.0 {
        return 0;
    }
    if mean < 30.0 {
        // Knuth: count multiplications until the product drops below
        // e^-mean.
        let limit = (-mean).exp();
        let mut product = rng.gen::<f64>();
        let mut count = 0u64;
        while product > limit {
            product *= rng.gen::<f64>();
            count += 1;
        }
        count
    } else {
        // Normal approximation N(mean, mean).
        let z = standard_normal(rng);
        (mean + z * mean.sqrt()).round().max(0.0) as u64
    }
}

/// Draws from an exponential distribution with the given rate `λ`.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive and finite.
///
/// # Examples
///
/// ```
/// use edge_workload::sampler::exponential;
/// use edge_common::rng::seeded_rng;
///
/// let mut rng = seeded_rng(2);
/// let draws: Vec<f64> = (0..2000).map(|_| exponential(&mut rng, 2.0)).collect();
/// let mean = draws.iter().sum::<f64>() / draws.len() as f64;
/// assert!((mean - 0.5).abs() < 0.1); // E[X] = 1/λ
/// ```
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(
        rate.is_finite() && rate > 0.0,
        "exponential rate must be finite and > 0"
    );
    // Inverse CDF; 1-u avoids ln(0).
    let u: f64 = rng.gen();
    -(1.0 - u).ln() / rate
}

/// Draws a standard normal variate via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws a uniform integer from the inclusive range `[lo, hi]`.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn uniform_int<R: Rng + ?Sized>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    assert!(lo <= hi, "uniform_int requires lo <= hi");
    rng.gen_range(lo..=hi)
}

/// Draws a uniform float from the half-open range `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi` or either bound is non-finite.
pub fn uniform_f64<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(
        lo.is_finite() && hi.is_finite() && lo < hi,
        "uniform_f64 requires finite lo < hi"
    );
    rng.gen_range(lo..hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_common::rng::seeded_rng;

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut rng = seeded_rng(3);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn poisson_mean_and_variance_track_lambda() {
        let mut rng = seeded_rng(4);
        for &lambda in &[1.0, 5.0, 10.0] {
            let n = 4000;
            let draws: Vec<f64> = (0..n).map(|_| poisson(&mut rng, lambda) as f64).collect();
            let mean = draws.iter().sum::<f64>() / n as f64;
            let var = draws.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < 0.35 * lambda.max(1.0),
                "mean {mean} for λ={lambda}"
            );
            assert!(
                (var - lambda).abs() < 0.5 * lambda.max(1.0),
                "var {var} for λ={lambda}"
            );
        }
    }

    #[test]
    fn poisson_large_mean_uses_normal_branch() {
        let mut rng = seeded_rng(5);
        let n = 4000;
        let lambda = 50.0;
        let mean = (0..n)
            .map(|_| poisson(&mut rng, lambda) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - lambda).abs() < 1.5, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "poisson mean")]
    fn poisson_rejects_negative_mean() {
        let mut rng = seeded_rng(6);
        poisson(&mut rng, -1.0);
    }

    #[test]
    fn exponential_is_nonnegative() {
        let mut rng = seeded_rng(7);
        for _ in 0..1000 {
            assert!(exponential(&mut rng, 3.0) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "exponential rate")]
    fn exponential_rejects_zero_rate() {
        let mut rng = seeded_rng(8);
        exponential(&mut rng, 0.0);
    }

    #[test]
    fn uniform_int_respects_bounds() {
        let mut rng = seeded_rng(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = uniform_int(&mut rng, 10, 35);
            assert!((10..=35).contains(&v));
            seen_lo |= v == 10;
            seen_hi |= v == 35;
        }
        assert!(
            seen_lo && seen_hi,
            "both endpoints should appear in 2000 draws"
        );
    }

    #[test]
    fn uniform_f64_respects_bounds() {
        let mut rng = seeded_rng(10);
        for _ in 0..1000 {
            let v = uniform_f64(&mut rng, 10.0, 35.0);
            assert!((10.0..35.0).contains(&v));
        }
    }

    #[test]
    fn standard_normal_is_roughly_standard() {
        let mut rng = seeded_rng(11);
        let n = 8000;
        let draws: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
