//! Synthetic request traces.
//!
//! The paper evaluates on "real-world data traces" that were never
//! released; per the reproduction contract we substitute seeded synthetic
//! traces drawn from exactly the distributions §V-A specifies (Poisson
//! arrivals with mean 5 for delay-sensitive and 10 for delay-tolerant
//! microservices). Traces are serializable so an experiment's input can be
//! archived next to its results.

use crate::request::{Request, RequestClass};
use crate::sampler::{exponential, poisson};
use edge_common::id::{MicroserviceId, Round, UserId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for trace generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of end users issuing requests (paper: 300).
    pub num_users: usize,
    /// Number of microservices receiving requests (paper: 25–75).
    pub num_microservices: usize,
    /// Number of rounds to generate.
    pub rounds: u64,
    /// Fraction of microservices that are delay-sensitive (the rest are
    /// delay-tolerant). The paper uses both types without giving a split;
    /// we default to one half.
    pub sensitive_fraction: f64,
    /// Mean work per request in resource-rounds (exponentially
    /// distributed).
    pub mean_work: f64,
    /// If set, arrival means are rescaled so the *expected* total number
    /// of requests per round equals this value — the paper's "requests set
    /// to 100 / 200" knob.
    pub target_requests_per_round: Option<u64>,
}

impl Default for TraceConfig {
    /// The §V-A defaults: 300 users, 25 microservices, 10 rounds, an even
    /// class split, and no request-count override.
    fn default() -> Self {
        TraceConfig {
            num_users: 300,
            num_microservices: 25,
            rounds: 10,
            sensitive_fraction: 0.5,
            mean_work: 0.2,
            target_requests_per_round: None,
        }
    }
}

/// A generated request trace: per-round request batches plus the class
/// assignment of each microservice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestTrace {
    config: TraceConfig,
    classes: Vec<RequestClass>,
    rounds: Vec<Vec<Request>>,
}

impl RequestTrace {
    /// Generates a trace from the config using the supplied RNG.
    ///
    /// Arrivals at each microservice in each round are Poisson with the
    /// class mean (rescaled if `target_requests_per_round` is set); each
    /// request is attributed to a uniformly random user and carries
    /// exponentially distributed work.
    ///
    /// # Panics
    ///
    /// Panics if the config has zero microservices or users, a
    /// non-positive `mean_work`, or `sensitive_fraction` outside `[0, 1]`.
    pub fn generate<R: Rng + ?Sized>(config: TraceConfig, rng: &mut R) -> Self {
        assert!(
            config.num_microservices > 0,
            "trace needs at least one microservice"
        );
        assert!(config.num_users > 0, "trace needs at least one user");
        assert!(
            config.mean_work.is_finite() && config.mean_work > 0.0,
            "mean_work must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&config.sensitive_fraction),
            "sensitive_fraction must lie in [0, 1]"
        );

        let classes: Vec<RequestClass> = (0..config.num_microservices)
            .map(|_| {
                if rng.gen::<f64>() < config.sensitive_fraction {
                    RequestClass::DelaySensitive
                } else {
                    RequestClass::DelayTolerant
                }
            })
            .collect();

        // Natural expected total per round, used to derive the rescale
        // factor when a target is requested.
        let natural_total: f64 = classes.iter().map(|c| c.poisson_mean()).sum();
        let scale = match config.target_requests_per_round {
            Some(target) if natural_total > 0.0 => target as f64 / natural_total,
            _ => 1.0,
        };

        let work_rate = 1.0 / config.mean_work;
        let rounds = (0..config.rounds)
            .map(|t| {
                let round = Round::new(t);
                let mut batch = Vec::new();
                for (m, class) in classes.iter().enumerate() {
                    let n = poisson(rng, class.poisson_mean() * scale);
                    for _ in 0..n {
                        let user = UserId::new(rng.gen_range(0..config.num_users));
                        let work = exponential(rng, work_rate).max(1e-6);
                        batch.push(Request::new(
                            user,
                            MicroserviceId::new(m),
                            *class,
                            round,
                            work,
                        ));
                    }
                }
                // Priority order: delay-sensitive first (stable within a
                // class to preserve arrival order).
                batch.sort_by_key(|r| r.class.priority());
                batch
            })
            .collect();

        RequestTrace {
            config,
            classes,
            rounds,
        }
    }

    /// The configuration this trace was generated from.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// The latency class assigned to a microservice.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for this trace.
    pub fn class_of(&self, ms: MicroserviceId) -> RequestClass {
        self.classes[ms.index()]
    }

    /// Number of generated rounds.
    pub fn num_rounds(&self) -> u64 {
        self.rounds.len() as u64
    }

    /// The request batch arriving in a round (empty past the end of the
    /// trace).
    pub fn requests_at(&self, round: Round) -> &[Request] {
        self.rounds
            .get(round.index() as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterates over `(round, batch)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Round, &[Request])> {
        self.rounds
            .iter()
            .enumerate()
            .map(|(t, b)| (Round::new(t as u64), b.as_slice()))
    }

    /// Total number of requests across all rounds.
    pub fn total_requests(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }

    /// Writes the trace as pretty JSON — archive an experiment's exact
    /// input next to its results.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; serialization of a valid trace
    /// cannot fail.
    pub fn save_json<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self).expect("traces serialize infallibly");
        std::fs::write(path, json)
    }

    /// Reads a trace previously written by [`save_json`](Self::save_json).
    ///
    /// # Errors
    ///
    /// Filesystem errors, or `InvalidData` when the file is not a valid
    /// trace.
    pub fn load_json<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_common::rng::seeded_rng;

    #[test]
    fn generates_expected_volume() {
        let mut rng = seeded_rng(21);
        let config = TraceConfig {
            rounds: 20,
            ..TraceConfig::default()
        };
        let trace = RequestTrace::generate(config, &mut rng);
        // 25 microservices, ~half sensitive: expected (12.5*5 + 12.5*10)
        // = 187.5 per round. Allow generous slack for class sampling.
        let per_round = trace.total_requests() as f64 / 20.0;
        assert!(
            (100.0..300.0).contains(&per_round),
            "per-round volume {per_round}"
        );
    }

    #[test]
    fn target_override_hits_requested_volume() {
        let mut rng = seeded_rng(22);
        let config = TraceConfig {
            rounds: 30,
            target_requests_per_round: Some(100),
            ..TraceConfig::default()
        };
        let trace = RequestTrace::generate(config, &mut rng);
        let per_round = trace.total_requests() as f64 / 30.0;
        assert!(
            (per_round - 100.0).abs() < 15.0,
            "per-round volume {per_round}"
        );
    }

    #[test]
    fn batches_are_priority_ordered() {
        let mut rng = seeded_rng(23);
        let trace = RequestTrace::generate(TraceConfig::default(), &mut rng);
        for (_, batch) in trace.iter() {
            assert!(batch
                .windows(2)
                .all(|w| w[0].class.priority() <= w[1].class.priority()));
        }
    }

    #[test]
    fn same_seed_same_trace() {
        let a = RequestTrace::generate(TraceConfig::default(), &mut seeded_rng(24));
        let b = RequestTrace::generate(TraceConfig::default(), &mut seeded_rng(24));
        assert_eq!(a, b);
    }

    #[test]
    fn out_of_range_round_is_empty() {
        let mut rng = seeded_rng(25);
        let trace = RequestTrace::generate(TraceConfig::default(), &mut rng);
        assert!(trace.requests_at(Round::new(9999)).is_empty());
    }

    #[test]
    fn class_assignment_respects_extremes() {
        let mut rng = seeded_rng(26);
        let all_sensitive = RequestTrace::generate(
            TraceConfig {
                sensitive_fraction: 1.0,
                ..TraceConfig::default()
            },
            &mut rng,
        );
        for m in 0..25 {
            assert_eq!(
                all_sensitive.class_of(MicroserviceId::new(m)),
                RequestClass::DelaySensitive
            );
        }
    }

    #[test]
    fn serde_round_trip_is_stable() {
        // Floating-point JSON round-trips can differ by one ULP in the
        // parser, so we check *idempotence*: after one round trip the
        // representation is a fixed point, and the structure is intact.
        let mut rng = seeded_rng(27);
        let config = TraceConfig {
            rounds: 2,
            num_microservices: 3,
            ..TraceConfig::default()
        };
        let trace = RequestTrace::generate(config, &mut rng);
        let json = serde_json::to_string(&trace).unwrap();
        let back: RequestTrace = serde_json::from_str(&json).unwrap();
        let json2 = serde_json::to_string(&back).unwrap();
        let back2: RequestTrace = serde_json::from_str(&json2).unwrap();
        assert_eq!(back2, back);
        assert_eq!(back.total_requests(), trace.total_requests());
        assert_eq!(back.config(), trace.config());
    }

    #[test]
    fn save_and_load_round_trip() {
        let mut rng = seeded_rng(29);
        let config = TraceConfig {
            rounds: 2,
            num_microservices: 3,
            ..TraceConfig::default()
        };
        let trace = RequestTrace::generate(config, &mut rng);
        let mut path = std::env::temp_dir();
        path.push(format!("edge-workload-trace-{}.json", std::process::id()));
        trace.save_json(&path).unwrap();
        let loaded = RequestTrace::load_json(&path).unwrap();
        assert_eq!(loaded.total_requests(), trace.total_requests());
        assert_eq!(loaded.config(), trace.config());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_rejects_garbage() {
        let mut path = std::env::temp_dir();
        path.push(format!("edge-workload-garbage-{}.json", std::process::id()));
        std::fs::write(&path, "not json at all").unwrap();
        let err = RequestTrace::load_json(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[should_panic(expected = "at least one microservice")]
    fn rejects_empty_population() {
        let mut rng = seeded_rng(28);
        RequestTrace::generate(
            TraceConfig {
                num_microservices: 0,
                ..TraceConfig::default()
            },
            &mut rng,
        );
    }
}
