//! Scenario: a delay-sensitive microservice takes a traffic burst.
//!
//! Run with `cargo run --example autoscale_burst`.
//!
//! This is the paper's motivating workload (§I): a Function-as-a-Service
//! edge cloud where one tenant's microservice suddenly needs to scale up
//! while its neighbours sit on spare resources. We run the full pipeline:
//!
//! 1. generate a §V-A workload trace and simulate the edge cloud;
//! 2. after each round, estimate the hot microservice's demand with the
//!    §III estimator;
//! 3. auction the shortfall among the co-located microservices holding
//!    spare allocation (SSAM), and apply the winning transfers back into
//!    the simulator;
//! 4. watch the hot service's queue drain compared to a no-market run.

use edge_market::auction::bid::Bid;
use edge_market::auction::ssam::{run_ssam, SsamConfig};
use edge_market::auction::wsp::WspInstance;
use edge_market::common::id::{BidId, MicroserviceId};
use edge_market::common::rng::seeded_rng;
use edge_market::common::units::Resource;
use edge_market::demand::{DemandConfig, DemandEstimator};
use edge_market::sim::engine::{SimConfig, Simulation};
use edge_market::workload::trace::{RequestTrace, TraceConfig};
use rand::Rng;

/// Runs the simulation; when `market` is on, each round auctions the hot
/// microservice's estimated shortfall among its neighbours. Returns the
/// hot service's final backlog (queued work).
fn run(market: bool, seed: u64) -> Result<f64, Box<dyn std::error::Error>> {
    let mut rng = seeded_rng(seed);
    let trace = RequestTrace::generate(
        TraceConfig {
            num_microservices: 8,
            rounds: 12,
            // Heavy load: all services are delay-sensitive and busy.
            sensitive_fraction: 1.0,
            target_requests_per_round: Some(160),
            ..TraceConfig::default()
        },
        &mut rng,
    );
    // One cloud so every microservice can trade with the hot one.
    let mut sim = Simulation::new(
        trace,
        SimConfig {
            num_clouds: 1,
            cloud_capacity: 30.0,
        },
    );
    let hub = sim.metrics();
    let estimator = DemandEstimator::new(DemandConfig::default());
    let hot = MicroserviceId::new(0);

    while let Some(round) = sim.step() {
        if !market {
            continue;
        }
        let batch = hub.at_round(round);
        let Some(hot_row) = batch.iter().find(|m| m.ms == hot) else {
            continue;
        };
        let estimate = estimator.estimate(hot_row, round.index() + 1);
        let shortfall = estimate.units().min(12);
        if shortfall == 0 {
            continue;
        }

        // Neighbours with spare allocation submit bids.
        let mut bids = Vec::new();
        for row in &batch {
            if row.ms == hot {
                continue;
            }
            let spare = sim.spare_of(row.ms)?.value().floor() as u64;
            if spare >= 1 {
                let price = rng.gen_range(10.0..35.0) * spare as f64 / 5.0;
                bids.push(Bid::new(row.ms, BidId::new(0), spare, price)?);
            }
        }
        let Ok(instance) = WspInstance::new(shortfall, bids) else {
            continue;
        };
        let Ok(outcome) = run_ssam(&instance, &SsamConfig::default()) else {
            continue;
        };
        for w in &outcome.winners {
            sim.schedule_transfer(w.seller, hot, Resource::new(w.contribution as f64)?)?;
        }
    }
    Ok(sim.service(hot)?.queued_work().value())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("autoscale burst: hot microservice backlog after 12 rounds\n");
    let mut with_market_wins = 0;
    for seed in 0..5 {
        let without = run(false, seed)?;
        let with = run(true, seed)?;
        println!("seed {seed}: backlog without market {without:8.2}  |  with market {with:8.2}",);
        if with <= without {
            with_market_wins += 1;
        }
    }
    println!("\nthe market relieved the hot service in {with_market_wins}/5 runs");
    Ok(())
}
