//! Scenario: the market under infrastructure failures.
//!
//! Run with `cargo run --example failure_resilience`.
//!
//! Edge clouds are not static — servers fail and recover. This example
//! injects a mid-run capacity failure and a microservice crash into the
//! simulator and shows the market's behaviour around them: supply
//! (spare resources offered) collapses during the failure and recovers
//! after, while delay-sensitive traffic keeps being served first.

use edge_market::auction::bid::Bid;
use edge_market::auction::ssam::{run_ssam, SsamConfig};
use edge_market::auction::wsp::WspInstance;
use edge_market::common::id::{BidId, EdgeCloudId, MicroserviceId};
use edge_market::common::rng::seeded_rng;
use edge_market::common::units::Resource;
use edge_market::sim::engine::{SimConfig, Simulation};
use edge_market::sim::events::{EventSchedule, SimEvent};
use edge_market::workload::trace::{RequestTrace, TraceConfig};
use rand::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = seeded_rng(404);
    let trace = RequestTrace::generate(
        TraceConfig {
            num_microservices: 8,
            rounds: 12,
            target_requests_per_round: Some(80),
            ..TraceConfig::default()
        },
        &mut rng,
    );
    let mut sim = Simulation::new(
        trace,
        SimConfig {
            num_clouds: 1,
            cloud_capacity: 30.0,
        },
    );

    // Round 4: half the cloud's capacity fails. Round 8: it recovers.
    // Round 5: one seller microservice crashes outright until round 9.
    let mut events = EventSchedule::new();
    events
        .at(
            4,
            SimEvent::CapacityChange {
                cloud: EdgeCloudId::new(0),
                capacity: Resource::new(14.0)?,
            },
        )
        .at(
            8,
            SimEvent::CapacityChange {
                cloud: EdgeCloudId::new(0),
                capacity: Resource::new(30.0)?,
            },
        )
        .at(
            5,
            SimEvent::PauseService {
                ms: MicroserviceId::new(3),
            },
        )
        .at(
            9,
            SimEvent::ResumeService {
                ms: MicroserviceId::new(3),
            },
        );
    sim.set_events(events);

    println!("round | sellable spare | market demand | winners | cleared");
    println!("------+----------------+---------------+---------+--------");
    while let Some(round) = sim.step() {
        // Supply side: spare units across all microservices.
        let mut bids = Vec::new();
        let mut spare_total = 0u64;
        for m in 1..8 {
            let ms = MicroserviceId::new(m);
            if sim.is_paused(ms)? {
                continue; // a crashed service cannot sell
            }
            let spare = sim.spare_of(ms)?.value().floor() as u64;
            spare_total += spare;
            if spare >= 1 {
                let price = rng.gen_range(10.0..35.0) * spare as f64 / 5.0;
                bids.push(Bid::new(ms, BidId::new(0), spare, price)?);
            }
        }
        let demand = 6u64;
        let outcome = WspInstance::new(demand, bids)
            .ok()
            .and_then(|inst| run_ssam(&inst, &SsamConfig::default()).ok());
        match outcome {
            Some(o) => {
                for w in &o.winners {
                    sim.schedule_transfer(
                        w.seller,
                        MicroserviceId::new(0),
                        Resource::new(w.contribution as f64)?,
                    )?;
                }
                println!(
                    "{:>5} | {:>14} | {:>13} | {:>7} | yes",
                    round.index(),
                    spare_total,
                    demand,
                    o.winners.len()
                );
            }
            None => {
                println!(
                    "{:>5} | {:>14} | {:>13} | {:>7} | NO (supply collapsed)",
                    round.index(),
                    spare_total,
                    demand,
                    0
                );
            }
        }
    }
    println!("\nthe failure window (rounds 4-8) is visible as collapsed supply;");
    println!("the market recovers automatically once capacity returns.");
    Ok(())
}
