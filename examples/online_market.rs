//! Scenario: a ten-round online resource market.
//!
//! Run with `cargo run --example online_market`.
//!
//! The paper's headline setting: demand arrives round by round with no
//! knowledge of the future, sellers have limited long-run capacity
//! `Θ_i` and availability windows, and the platform runs MSOA. We
//! compare the plain mechanism against its variants (perfect demand
//! estimation, relaxed capacities) and against the offline optimum that
//! sees the whole horizon in advance.

use edge_market::auction::msoa::MsoaConfig;
use edge_market::auction::offline::offline_optimum_multi;
use edge_market::auction::variants::{run_variant, MsoaVariant};
use edge_market::bench::scenario::multi_round_instance;
use edge_market::common::rng::derive_rng;
use edge_market::lp::IlpOptions;
use edge_market::workload::params::PaperParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = PaperParams::default()
        .with_microservices(12)
        .with_rounds(10);
    let mut rng = derive_rng(2024, "online-market");
    let instance = multi_round_instance(&params, 0.25, &mut rng);

    println!(
        "online market: {} sellers, {} rounds, J = {} bids per seller\n",
        params.num_microservices, params.rounds, params.bids_per_seller
    );

    // Plain MSOA, round by round.
    let plain = run_variant(&instance, &MsoaConfig::default(), MsoaVariant::Plain)?;
    println!(
        "{:>5} {:>8} {:>9} {:>13} {:>12}",
        "round", "demand", "winners", "social cost", "payments"
    );
    for r in &plain.rounds {
        println!(
            "{:>5} {:>8} {:>9} {:>13} {:>12}{}",
            r.round,
            r.demand,
            r.winners.len(),
            r.social_cost.to_string(),
            r.total_payment.to_string(),
            if r.infeasible { "  (uncovered)" } else { "" }
        );
    }
    println!(
        "\nβ = {:.2}, α = {:.2}, competitive bound αβ/(β−1) = {:.2}",
        plain.beta, plain.alpha, plain.competitive_bound
    );

    // The offline adversary and the variants.
    let offline = offline_optimum_multi(&instance, true, &IlpOptions::default())?;
    println!(
        "\noffline optimum ({}): ${:.2}",
        if offline.is_exact() {
            "exact"
        } else {
            "lower bound"
        },
        offline.value()
    );
    println!(
        "\n{:<10} {:>13} {:>9} {:>18}",
        "variant", "social cost", "ratio", "uncovered rounds"
    );
    for v in [
        MsoaVariant::Plain,
        MsoaVariant::DemandAware,
        MsoaVariant::RelaxedCapacity { factor: 2.0 },
        MsoaVariant::Optimized { factor: 2.0 },
    ] {
        let out = run_variant(&instance, &MsoaConfig::default(), v)?;
        println!(
            "{:<10} {:>13} {:>9.3} {:>18}",
            v.to_string(),
            out.social_cost.to_string(),
            out.social_cost.value() / offline.value(),
            out.infeasible_rounds().len()
        );
    }
    Ok(())
}
