//! Quickstart: one single-stage auction, end to end.
//!
//! Run with `cargo run --example quickstart`.
//!
//! Five microservices hold spare edge-cloud resources; the platform must
//! reclaim 8 units to serve a scaling-up tenant. We run SSAM, inspect the
//! winners and their critical-value payments, and compare the social cost
//! with the exact offline optimum.

use edge_market::auction::bid::Bid;
use edge_market::auction::offline::offline_optimum_round;
use edge_market::auction::ssam::{run_ssam, SsamConfig};
use edge_market::auction::wsp::WspInstance;
use edge_market::common::id::{BidId, MicroserviceId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Each seller states how many resource units it can yield and its
    // asking price (its true cost of yielding — the mechanism makes
    // truthful reporting the dominant strategy).
    let offers: [(usize, u64, f64); 5] = [
        (0, 3, 7.5),  // ms#0: 3u for $7.50  ($2.50/u)
        (1, 2, 3.0),  // ms#1: 2u for $3.00  ($1.50/u)
        (2, 4, 11.0), // ms#2: 4u for $11.00 ($2.75/u)
        (3, 2, 9.0),  // ms#3: 2u for $9.00  ($4.50/u)
        (4, 3, 6.9),  // ms#4: 3u for $6.90  ($2.30/u)
    ];
    let bids = offers
        .iter()
        .map(|&(s, amount, price)| Bid::new(MicroserviceId::new(s), BidId::new(0), amount, price))
        .collect::<Result<Vec<_>, _>>()?;

    let demand = 8;
    let instance = WspInstance::new(demand, bids)?;
    let outcome = run_ssam(&instance, &SsamConfig::default())?;

    println!("demand: {demand} resource units\n");
    println!(
        "{:<8} {:>6} {:>12} {:>10} {:>10}",
        "winner", "units", "contributed", "price", "payment"
    );
    for w in &outcome.winners {
        println!(
            "{:<8} {:>6} {:>12} {:>10} {:>10}",
            w.seller.to_string(),
            w.amount_offered,
            w.contribution,
            w.price.to_string(),
            w.payment.to_string()
        );
        assert!(w.payment >= w.price, "individual rationality");
    }

    let optimum = offline_optimum_round(&instance).expect("instance is feasible");
    println!("\nsocial cost : {}", outcome.social_cost);
    println!("payments    : {}", outcome.total_payment);
    println!("optimum     : ${optimum:.2}");
    println!(
        "ratio       : {:.3} (certified upper bound π = {:.3})",
        outcome.social_cost.value() / optimum,
        outcome.certificate.pi
    );
    Ok(())
}
