//! Scenario: auditing the mechanism's economic guarantees.
//!
//! Run with `cargo run --example truthfulness_audit`.
//!
//! A platform operator adopting this mechanism will want evidence, not
//! theorems. This example turns the paper's Theorems 4–5 into an audit
//! over a realistic instance: it sweeps price deviations for every
//! seller, verifies individual rationality and payment thresholds, and
//! contrasts the auction with the naive fixed-price alternative from the
//! paper's introduction.

use edge_market::auction::baselines::run_fixed_price;
use edge_market::auction::properties::{
    audit_truthfulness, break_even_unit_charge, check_critical_payments,
    check_individual_rationality, check_monotonicity,
};
use edge_market::auction::ssam::{run_ssam, SsamConfig};
use edge_market::bench::scenario::single_round_instance;
use edge_market::common::rng::derive_rng;
use edge_market::workload::params::PaperParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = PaperParams::default()
        .with_microservices(15)
        .with_bids_per_seller(1);
    let mut rng = derive_rng(7, "audit");
    let instance = single_round_instance(&params, &mut rng);
    // A reserve makes truthfulness exact even for pivotal sellers.
    let config = SsamConfig {
        reserve_unit_price: Some(50.0),
    };

    let outcome = run_ssam(&instance, &config)?;
    println!(
        "instance: {} sellers, demand {} units, {} winners\n",
        instance.num_sellers(),
        instance.demand(),
        outcome.winners.len()
    );

    println!(
        "individual rationality : {}",
        check_individual_rationality(&outcome)
    );
    println!(
        "selection monotonicity : {}",
        check_monotonicity(&instance, &config)?
    );
    println!(
        "critical payments      : {}",
        check_critical_payments(&instance, &config, 1e-6)?
    );

    let deviations = [0.25, 0.5, 0.75, 0.9, 0.99, 1.01, 1.1, 1.5, 2.0, 4.0];
    let violations = audit_truthfulness(&instance, &config, &deviations)?;
    println!(
        "truthfulness audit     : {} profitable deviations across {} trials",
        violations.len(),
        instance.bids().count() * deviations.len()
    );
    for v in &violations {
        println!("  VIOLATION: {v:?}");
    }

    // Economics: what must buyers be charged for the platform to break
    // even, and how does the fixed-price alternative compare?
    let breakeven = break_even_unit_charge(&outcome);
    println!("\nauction payments       : {}", outcome.total_payment);
    println!("break-even unit charge : ${breakeven:.2}/unit");
    for posted in [breakeven * 0.5, breakeven, breakeven * 2.0] {
        let fp = run_fixed_price(&instance, posted);
        println!(
            "fixed price ${posted:>6.2}/unit: covered {}/{} units, paid {}",
            fp.covered, fp.demand, fp.total_payment
        );
    }
    println!(
        "\nthe posted-price mechanism either under-covers or over-pays;\n\
         the auction covers exactly at payments {} (cost {}).",
        outcome.total_payment, outcome.social_cost
    );
    Ok(())
}
