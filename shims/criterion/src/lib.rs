//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! warmup-then-sample measurement loop instead of criterion's full
//! statistical pipeline. Each benchmark prints min / median / mean
//! per-iteration times to stdout.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to the benchmark closure; runs the timed loop.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher<'_> {
    /// Times `routine`, storing one duration per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// Measurement settings shared by a group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark whose closure receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size;
        self.criterion.run_one(&label, sample_size, |b| f(b, input));
        self
    }

    /// Runs a benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size;
        self.criterion.run_one(&label, sample_size, |b| f(b));
        self
    }

    /// Ends the group (formatting no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            warmup: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let sample_size = self.default_sample_size;
        self.run_one(name, sample_size, |b| f(b));
        self
    }

    fn run_one<F: FnMut(&mut Bencher<'_>)>(&mut self, label: &str, sample_size: usize, mut f: F) {
        // Warmup pass: single-iteration samples until the warmup budget
        // is spent; the last observed time calibrates iters_per_sample.
        let mut samples = Vec::new();
        let mut per_iter = Duration::from_micros(1);
        let warmup_start = Instant::now();
        while warmup_start.elapsed() < self.warmup {
            let mut bencher = Bencher {
                samples: &mut samples,
                iters_per_sample: 1,
                sample_count: 1,
            };
            f(&mut bencher);
            if let Some(&d) = samples.last() {
                per_iter = d.max(Duration::from_nanos(1));
            }
        }

        // Aim for ~20ms per sample so short routines are timeable.
        let iters_per_sample = (Duration::from_millis(20).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1_000_000) as u64;
        let mut bencher = Bencher {
            samples: &mut samples,
            iters_per_sample,
            sample_count: sample_size,
        };
        f(&mut bencher);

        samples.sort_unstable();
        let min = samples.first().copied().unwrap_or_default();
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len().max(1) as u32;
        let mut line = String::new();
        let _ = write!(
            line,
            "{label:<48} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples x {} iters)",
            min,
            median,
            mean,
            samples.len(),
            iters_per_sample
        );
        println!("{line}");
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("to", 100u64), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn runs_to_completion() {
        let mut c = Criterion {
            default_sample_size: 3,
            warmup: Duration::from_millis(5),
        };
        fast_bench(&mut c);
        c.bench_function("standalone", |b| b.iter(|| black_box(21u64) * 2));
    }
}
