//! Offline stand-in for `crossbeam`'s scoped threads.
//!
//! Since Rust 1.63 the standard library has `std::thread::scope`, which
//! covers everything this workspace uses crossbeam for. This shim keeps
//! the crossbeam call shape — `crossbeam::scope(|s| …)` returning
//! `Result`, with `s.spawn(|_| …)` taking the scope as an argument — so
//! call sites read exactly like the real crate.

use std::any::Any;

/// Scoped-thread API (`crossbeam::thread`).
pub mod thread {
    use super::Any;

    /// A scope within which spawned threads are guaranteed to be joined.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result.
        ///
        /// # Errors
        ///
        /// Returns the thread's panic payload if it panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope (so
        /// nested spawns are possible, matching crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a thread scope; all spawned threads are joined
    /// before this returns.
    ///
    /// # Errors
    ///
    /// Returns the first panic payload if any spawned thread panicked
    /// (matching crossbeam, which surfaces child panics in the result
    /// rather than propagating them).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        // std::thread::scope propagates child panics as a panic in the
        // parent; catch it to preserve crossbeam's Result contract.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn spawns_and_collects() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn child_panic_becomes_err() {
        let result = crate::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn writes_into_slots() {
        let mut slots: Vec<Option<u64>> = vec![None; 8];
        crate::scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.spawn(move |_| *slot = Some(i as u64 * i as u64));
            }
        })
        .unwrap();
        assert_eq!(slots[7], Some(49));
    }
}
