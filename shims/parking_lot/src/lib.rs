//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's API: `lock()` /
//! `read()` / `write()` return guards directly instead of `Result`.
//! Poisoned locks are recovered with `into_inner` — parking_lot has no
//! poisoning, so neither does this shim.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Mutual exclusion without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Reader-writer lock without lock poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5u64);
        *m.lock() += 2;
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1u64]);
        l.write().push(2);
        let a = l.read();
        let b = l.read();
        assert_eq!((a.len(), b.len()), (2, 2));
    }
}
