//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! range / tuple / `Just` / `collection::vec` strategies, the
//! `prop_map` / `prop_flat_map` / `prop_filter` / `prop_filter_map`
//! combinators, the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` header, and the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking** — a failing case reports its seed and stream index
//!   so it can be replayed, but is not minimized.
//! * **Deterministic by default** — cases are generated from a fixed
//!   seed, so CI failures always reproduce locally.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
    /// Root seed for the deterministic case stream.
    pub seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            seed: 0x9a7e_57c0_ffee_u64,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// The generator handed to strategies.
pub struct TestRng(pub ChaCha8Rng);

impl TestRng {
    /// Creates the generator for one case of one test.
    pub fn new(seed: u64, stream: u64) -> Self {
        // Mix the stream index in with splitmix-style constants so
        // consecutive cases are decorrelated.
        let mixed = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        TestRng(ChaCha8Rng::seed_from_u64(mixed))
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generated value was rejected by a filter; the runner retries with
/// fresh randomness.
#[derive(Debug, Clone, Copy)]
pub struct Rejection(pub &'static str);

/// A source of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value, or rejects the attempt.
    ///
    /// # Errors
    ///
    /// Returns [`Rejection`] when a filter discarded the draw.
    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection>;

    /// Transforms generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Chains a dependent strategy off each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Discards values failing a predicate.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }

    /// Transforms values, discarding those mapped to `None`.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            reason,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Result<O, Rejection> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Result<S2::Value, Rejection> {
        (self.f)(self.inner.generate(rng)?).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
        let v = self.inner.generate(rng)?;
        if (self.f)(&v) {
            Ok(v)
        } else {
            Err(Rejection(self.reason))
        }
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Result<O, Rejection> {
        (self.f)(self.inner.generate(rng)?).ok_or(Rejection(self.reason))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(self.0.clone())
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                Ok(rand::Rng::gen_range(rng, self.clone()))
            }
        }

        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                Ok(rand::Rng::gen_range(rng, self.clone()))
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($t:ident $n:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
                Ok(($(self.$n.generate(rng)?,)+))
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Rejection, Strategy, TestRng};

    /// Acceptable length specifications for [`vec`].
    pub trait IntoSizeRange {
        /// Lower (inclusive) and upper (exclusive) length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Strategy for vectors with random length and elements.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max_exclusive) = size.bounds();
        assert!(min < max_exclusive, "empty size range");
        VecStrategy {
            element,
            min,
            max_exclusive,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Rejection> {
            let len = rand::Rng::gen_range(rng, self.min..self.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Outcome of running one generated case.
#[derive(Debug, Clone, Copy)]
pub enum CaseOutcome {
    /// Assertions held.
    Pass,
    /// A filter rejected the generated input; retry.
    Reject,
}

/// Drives the case loop for one `proptest!` test function.
///
/// # Panics
///
/// Panics when a case fails (reporting seed and stream for replay) or
/// when filters reject too many consecutive candidates.
pub fn run_cases<F>(config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<CaseOutcome, String>,
{
    let mut consecutive_rejects = 0u32;
    let mut passed = 0u32;
    let mut stream = 0u64;
    while passed < config.cases {
        let mut rng = TestRng::new(config.seed, stream);
        match case(&mut rng) {
            Ok(CaseOutcome::Pass) => {
                passed += 1;
                consecutive_rejects = 0;
            }
            Ok(CaseOutcome::Reject) => {
                consecutive_rejects += 1;
                assert!(
                    consecutive_rejects < 65_536,
                    "proptest: {consecutive_rejects} consecutive rejections — \
                     strategy filters are too strict"
                );
            }
            Err(message) => panic!(
                "proptest case failed (replay: seed={}, stream={stream})\n{message}",
                config.seed
            ),
        }
        stream += 1;
    }
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { … } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); ) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::run_cases(&__config, |__rng| {
                $(
                    let $pat = match $crate::Strategy::generate(&($strategy), __rng) {
                        ::std::result::Result::Ok(v) => v,
                        ::std::result::Result::Err(_) => {
                            return ::std::result::Result::Ok($crate::CaseOutcome::Reject)
                        }
                    };
                )+
                let __run = || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                __run().map(|()| $crate::CaseOutcome::Pass)
            });
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
}

/// Asserts inside a property body, failing the case (not the process)
/// so the runner can report the reproducing seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left), ::std::stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}", ::std::format!($($fmt)+), l, r
            ));
        }
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l
            ));
        }
    }};
}

/// The glob-import surface test files use.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 1u64..10, (a, b) in (0u32..5, 0.0f64..1.0)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(a < 5);
            prop_assert!((0.0..1.0).contains(&b), "b = {b}");
        }

        #[test]
        fn combinators(v in collection::vec(0u64..100, 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn flat_map_dependent(pair in collection::vec(1u64..6, 2..5)
            .prop_flat_map(|v| {
                let total: u64 = v.iter().sum();
                (Just(v), 1u64..=total)
            })) {
            let (v, demand) = pair;
            let total: u64 = v.iter().sum();
            prop_assert!(demand >= 1 && demand <= total);
        }

        #[test]
        fn filters_reject(x in (0u64..100).prop_filter("even only", |x| x % 2 == 0)) {
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = super::TestRng::new(1, 5);
        let mut b = super::TestRng::new(1, 5);
        assert_eq!(
            rand::Rng::gen_range(&mut a, 0u64..1000),
            rand::Rng::gen_range(&mut b, 0u64..1000)
        );
    }
}
