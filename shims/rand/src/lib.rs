//! Offline stand-in for `rand` 0.8.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the trait surface it actually uses: [`RngCore`] as the
//! generator primitive, [`Rng`] with `gen` / `gen_range` / `gen_bool`,
//! [`SeedableRng::seed_from_u64`], and [`seq::SliceRandom::shuffle`].
//! The concrete generator lives in the sibling `rand_chacha` shim.
//!
//! Distribution details (how a `u64` becomes a `f64` in `[0, 1)`, how a
//! range is sampled) are fixed here and deterministic across platforms;
//! they do not bit-match the real rand crate, which no test in this
//! workspace relies on.

/// The generator primitive: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Sized adapter so `Rng`'s provided methods work on unsized receivers.
struct ByRef<'a, R: ?Sized>(&'a mut R);

impl<R: RngCore + ?Sized> RngCore for ByRef<'_, R> {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Types sampleable uniformly from raw generator output (the shim's
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// 53 uniform mantissa bits → `[0, 1)`.
    fn sample(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`], generic over the output type
/// so the expected type drives integer-literal inference (matching rand,
/// where `let n: usize = rng.gen_range(3..9)` compiles without suffixes).
pub trait SampleRange<T> {
    /// Draws uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Maps a uniform `u64` onto `[0, span)` via 128-bit widening multiply
/// (Lemire's method without the rejection step — the bias is ≤ 2⁻⁶⁴·span
/// and irrelevant for simulation workloads).
fn mul_shift(word: u64, span: u64) -> u64 {
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(mul_shift(rng.next_u64(), span) as $t)
            }
        }

        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(mul_shift(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// The user-facing generator trait (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-sampleable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(&mut ByRef(self))
    }

    /// Draws uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(&mut ByRef(self))
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::sample(&mut ByRef(self)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generator constructors.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Slice shuffling and selection.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` when empty).
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = Counter(1);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn unsized_receivers_work() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..10)
        }
        let mut rng = Counter(9);
        assert!(draw(&mut rng) < 10);
    }
}
