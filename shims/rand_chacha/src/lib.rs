//! Offline stand-in for `rand_chacha`.
//!
//! Implements the ChaCha8 stream cipher (RFC 8439 block function with 8
//! rounds) as a deterministic, portable random number generator behind
//! the vendored `rand` shim's traits. Output is stable across platforms
//! and releases — the property `edge_common::rng` documents — but does
//! not bit-match the real `rand_chacha` crate (nothing in the workspace
//! depends on the upstream stream).

use rand::{RngCore, SeedableRng};

/// Re-exports mirroring `rand_chacha`'s re-export of `rand_core`.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

const BLOCK_WORDS: usize = 16;

/// A ChaCha stream with 8 rounds — fast, seedable, and portable.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, key, counter, nonce.
    state: [u32; BLOCK_WORDS],
    /// Current keystream block.
    buffer: [u32; BLOCK_WORDS],
    /// Next unread word in `buffer` (`BLOCK_WORDS` = exhausted).
    index: usize,
}

/// `splitmix64` — expands a 64-bit seed into key material, mirroring how
/// `rand_core` seeds wider states from `seed_from_u64`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12–13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k".
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..4 {
            let word = splitmix64(&mut sm);
            state[4 + 2 * i] = word as u32;
            state[5 + 2 * i] = (word >> 32) as u32;
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            buffer: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_word());
        let hi = u64::from(self.next_word());
        (hi << 32) | lo
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        // Draw past one 16-word block and check the stream keeps moving.
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn clone_continues_identically() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        rng.next_u64();
        let mut fork = rng.clone();
        assert_eq!(rng.next_u64(), fork.next_u64());
    }
}
