//! Offline stand-in for `serde`.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors a minimal serialization framework under the
//! familiar `serde` name. It supports exactly the subset the workspace
//! uses: `#[derive(Serialize, Deserialize)]` on structs and enums
//! (including `#[serde(transparent)]` newtypes), and JSON text via the
//! sibling `serde_json` shim.
//!
//! The data model is a self-describing [`Value`] tree rather than the
//! real serde's visitor architecture; that keeps the implementation a
//! few hundred lines while remaining wire-compatible with serde_json for
//! the types this workspace serializes (externally tagged enums, maps
//! with integer-like keys, newtype structs collapsing to their inner
//! value).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A parsed or to-be-printed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal.
    U64(u64),
    /// A negative integer literal.
    I64(i64),
    /// Any number written with a fraction or exponent (or out of integer
    /// range).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order (serde_json's default preserves the
    /// struct's field order, which keeps output diffable).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The fields of an object, if this is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Numeric view accepting any of the three number variants.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(u) => Some(u as f64),
            Value::I64(i) => Some(i as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization failure: what was expected and what was found.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

fn type_err<T>(expected: &str, found: &Value) -> Result<T, DeError> {
    Err(DeError(format!(
        "expected {expected}, found {}",
        found.kind()
    )))
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the JSON data model.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the JSON data model.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] on a shape or type mismatch.
    fn deserialize(v: &Value) -> Result<Self, DeError>;

    /// The value to use when an object field is absent (`None` = the
    /// field is required). Overridden by `Option<T>`.
    fn absent() -> Option<Self> {
        None
    }
}

/// Looks up a struct field in an object, honouring [`Deserialize::absent`].
///
/// # Errors
///
/// Returns [`DeError`] when the field is missing and required, or fails
/// to deserialize.
pub fn field<T: Deserialize>(fields: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match fields.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::deserialize(v).map_err(|e| DeError(format!("field `{name}`: {}", e.0))),
        None => T::absent().ok_or_else(|| DeError(format!("missing field `{name}`"))),
    }
}

// ---------------------------------------------------------------------
// Serialize impls for primitives and std containers.
// ---------------------------------------------------------------------

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Renders a serialized key as a JSON object key, matching serde_json's
/// convention of stringifying integer-like map keys.
fn key_to_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::U64(u) => u.to_string(),
        Value::I64(i) => i.to_string(),
        other => panic!("unsupported map key type: {}", other.kind()),
    }
}

fn key_from_str(s: &str) -> Value {
    if let Ok(u) = s.parse::<u64>() {
        Value::U64(u)
    } else if let Ok(i) = s.parse::<i64>() {
        Value::I64(i)
    } else {
        Value::Str(s.to_owned())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.serialize()), v.serialize()))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------
// Deserialize impls.
// ---------------------------------------------------------------------

macro_rules! de_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::U64(u) => <$t>::try_from(u)
                        .map_err(|_| DeError(format!("{u} out of range for {}", stringify!($t)))),
                    _ => type_err("unsigned integer", v),
                }
            }
        }
    )*};
}
de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! de_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let wide: i64 = match *v {
                    Value::U64(u) => i64::try_from(u)
                        .map_err(|_| DeError(format!("{u} out of range for i64")))?,
                    Value::I64(i) => i,
                    _ => return type_err("integer", v),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_signed!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_f64().map_or_else(|| type_err("number", v), Ok)
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => type_err("bool", v),
        }
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => type_err("string", v),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }

    fn absent() -> Option<Self> {
        Some(None)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => type_err("array", v),
        }
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($t::deserialize(&items[$n])?,)+))
                    }
                    Value::Array(items) => Err(DeError(format!(
                        "expected array of length {}, found {}", $len, items.len()
                    ))),
                    _ => type_err("array", v),
                }
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, val)| Ok((K::deserialize(&key_from_str(k))?, V::deserialize(val)?)))
                .collect(),
            _ => type_err("object", v),
        }
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------
// JSON text encoding / decoding (used by the serde_json shim).
// ---------------------------------------------------------------------

/// JSON text support for [`Value`].
pub mod json {
    use super::{DeError, Value};
    use std::fmt::Write as _;

    /// Prints a value as compact JSON.
    pub fn write(v: &Value, out: &mut String) {
        write_indent(v, out, None, 0);
    }

    /// Prints a value as pretty JSON with two-space indentation
    /// (serde_json's default).
    pub fn write_pretty(v: &Value, out: &mut String) {
        write_indent(v, out, Some(2), 0);
    }

    fn newline(out: &mut String, step: Option<usize>, depth: usize) {
        if let Some(step) = step {
            out.push('\n');
            out.push_str(&" ".repeat(step * depth));
        }
    }

    fn write_indent(v: &Value, out: &mut String, step: Option<usize>, depth: usize) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::U64(u) => {
                let _ = write!(out, "{u}");
            }
            Value::I64(i) => {
                let _ = write!(out, "{i}");
            }
            Value::F64(f) => write_f64(*f, out),
            Value::Str(s) => write_string(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, step, depth + 1);
                    write_indent(item, out, step, depth + 1);
                }
                newline(out, step, depth);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, val)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, step, depth + 1);
                    write_string(k, out);
                    out.push(':');
                    if step.is_some() {
                        out.push(' ');
                    }
                    write_indent(val, out, step, depth + 1);
                }
                newline(out, step, depth);
                out.push('}');
            }
        }
    }

    /// Matches serde_json: non-finite floats print as `null`; finite
    /// floats use Rust's shortest round-trippable decimal, with a
    /// trailing `.0` to keep them number-typed on re-read.
    fn write_f64(f: f64, out: &mut String) {
        if !f.is_finite() {
            out.push_str("null");
            return;
        }
        let s = format!("{f}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    }

    fn write_string(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Parses JSON text into a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Value, DeError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(DeError(format!("trailing characters at byte {pos}")));
        }
        Ok(v)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), DeError> {
        if *pos < bytes.len() && bytes[*pos] == b {
            *pos += 1;
            Ok(())
        } else {
            Err(DeError(format!("expected `{}` at byte {}", b as char, pos)))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, DeError> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err(DeError("unexpected end of input".into())),
            Some(b'n') => parse_lit(bytes, pos, b"null", Value::Null),
            Some(b't') => parse_lit(bytes, pos, b"true", Value::Bool(true)),
            Some(b'f') => parse_lit(bytes, pos, b"false", Value::Bool(false)),
            Some(b'"') => parse_string(bytes, pos).map(Value::Str),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(DeError(format!("expected `,` or `]` at byte {pos}"))),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(bytes, pos)?;
                    skip_ws(bytes, pos);
                    expect(bytes, pos, b':')?;
                    let value = parse_value(bytes, pos)?;
                    fields.push((key, value));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(DeError(format!("expected `,` or `}}` at byte {pos}"))),
                    }
                }
            }
            Some(_) => parse_number(bytes, pos),
        }
    }

    fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &[u8], v: Value) -> Result<Value, DeError> {
        if bytes[*pos..].starts_with(lit) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(DeError(format!("invalid literal at byte {pos}")))
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, DeError> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err(DeError("unterminated string".into())),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or_else(|| DeError("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| DeError("invalid \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| DeError("invalid \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| DeError("invalid \\u escape".into()))?,
                            );
                            *pos += 4;
                        }
                        _ => return Err(DeError(format!("invalid escape at byte {pos}"))),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &bytes[*pos..];
                    let s =
                        std::str::from_utf8(rest).map_err(|_| DeError("invalid UTF-8".into()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, DeError> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = bytes.get(*pos) {
            match b {
                b'0'..=b'9' => *pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    *pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&bytes[start..*pos])
            .map_err(|_| DeError("invalid number".into()))?;
        if text.is_empty() || text == "-" {
            return Err(DeError(format!("expected a value at byte {start}")));
        }
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| DeError(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(text: &str) {
        let v = json::parse(text).unwrap();
        let mut out = String::new();
        json::write(&v, &mut out);
        assert_eq!(out, text);
    }

    #[test]
    fn compact_round_trips() {
        round_trip("null");
        round_trip("true");
        round_trip("[1,2.5,-3]");
        round_trip(r#"{"a":[],"b":{},"c":"x\ny"}"#);
        round_trip("10.25");
        round_trip("18446744073709551615");
    }

    #[test]
    fn float_formatting_matches_serde_json() {
        let mut out = String::new();
        json::write(&Value::F64(4.0), &mut out);
        assert_eq!(out, "4.0");
    }

    #[test]
    fn map_keys_stringify() {
        let mut m = BTreeMap::new();
        m.insert(3u64, "x".to_owned());
        let v = m.serialize();
        assert_eq!(v.get("3"), Some(&Value::Str("x".into())));
        let back: BTreeMap<u64, String> = Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn option_fields_default_to_none() {
        let fields = vec![("a".to_owned(), Value::U64(1))];
        let missing: Option<u64> = field(&fields, "b").unwrap();
        assert_eq!(missing, None);
        let present: Option<u64> = field(&fields, "a").unwrap();
        assert_eq!(present, Some(1));
        assert!(field::<u64>(&fields, "b").is_err());
    }
}
