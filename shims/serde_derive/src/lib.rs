//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! The offline build has no `syn`/`quote`, so the item is parsed
//! directly from the `proc_macro` token stream. Supported shapes are
//! exactly what this workspace uses:
//!
//! * structs with named fields → JSON objects in declaration order;
//! * newtype structs (and `#[serde(transparent)]`) → the inner value;
//! * tuple structs with ≥ 2 fields → JSON arrays;
//! * enums, externally tagged: unit variants → `"Name"`, newtype
//!   variants → `{"Name": inner}`, struct variants →
//!   `{"Name": {fields…}}`, tuple variants → `{"Name": [items…]}`.
//!
//! Generics are not supported (nothing in the workspace derives on a
//! generic type); the macro panics with a clear message if it meets one.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;
use std::iter::Peekable;

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    body: Body,
    transparent: bool,
}

/// Skips one attribute (`#[...]`), returning whether it contained
/// `serde(... transparent ...)`.
fn skip_attr<I: Iterator<Item = TokenTree>>(it: &mut Peekable<I>) -> bool {
    // Caller consumed `#`; the bracket group follows.
    let Some(TokenTree::Group(g)) = it.next() else {
        panic!("malformed attribute");
    };
    let mut inner = g.stream().into_iter();
    let is_serde = matches!(&inner.next(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
    if !is_serde {
        return false;
    }
    if let Some(TokenTree::Group(args)) = inner.next() {
        return args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "transparent"));
    }
    false
}

/// Consumes leading attributes, reporting whether any was
/// `#[serde(transparent)]`.
fn skip_attrs<I: Iterator<Item = TokenTree>>(it: &mut Peekable<I>) -> bool {
    let mut transparent = false;
    while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        it.next();
        transparent |= skip_attr(it);
    }
    transparent
}

/// Consumes a visibility qualifier if present (`pub`, `pub(crate)`, …).
fn skip_vis<I: Iterator<Item = TokenTree>>(it: &mut Peekable<I>) {
    if matches!(it.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        it.next();
        if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            it.next();
        }
    }
}

/// Splits a field-list token stream at top-level commas, tracking angle
/// brackets (`BTreeMap<u64, Vec<T>>` has commas that are *not* field
/// separators and are not inside a delimiter group).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut pieces = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                pieces.push(Vec::new());
                continue;
            }
            _ => {}
        }
        pieces.last_mut().unwrap().push(t);
    }
    if pieces.last().is_some_and(Vec::is_empty) {
        pieces.pop();
    }
    pieces
}

/// Extracts the field name from one named-field token run
/// (`#[attr]* vis? name : Type`).
fn named_field(tokens: Vec<TokenTree>) -> String {
    let mut it = tokens.into_iter().peekable();
    skip_attrs(&mut it);
    skip_vis(&mut it);
    match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected field name, found {other:?}"),
    }
}

fn parse_fields_group(g: &proc_macro::Group) -> Fields {
    match g.delimiter() {
        Delimiter::Brace => Fields::Named(
            split_top_level(g.stream())
                .into_iter()
                .map(named_field)
                .collect(),
        ),
        Delimiter::Parenthesis => Fields::Tuple(split_top_level(g.stream()).len()),
        other => panic!("unexpected field delimiter {other:?}"),
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|tokens| {
            let mut it = tokens.into_iter().peekable();
            skip_attrs(&mut it);
            let name = match it.next() {
                Some(TokenTree::Ident(i)) => i.to_string(),
                other => panic!("expected variant name, found {other:?}"),
            };
            let fields = match it.next() {
                Some(TokenTree::Group(g)) => parse_fields_group(&g),
                None => Fields::Unit,
                other => panic!("unsupported tokens after variant `{name}`: {other:?}"),
            };
            Variant { name, fields }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    let transparent = skip_attrs(&mut it);
    skip_vis(&mut it);
    let kind = match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize/Deserialize) shim does not support generic type `{name}`");
    }
    let body = match kind.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) => Body::Struct(parse_fields_group(&g)),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Fields::Unit),
            other => panic!("unsupported struct body: {other:?}"),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body: {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };
    Item {
        name,
        body,
        transparent,
    }
}

// ---------------------------------------------------------------------
// Code generation (emitted as source text, then re-parsed).
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut code = String::new();
    let _ = write!(
        code,
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn serialize(&self) -> ::serde::Value {{ "
    );
    match &item.body {
        Body::Struct(Fields::Named(fields)) if item.transparent && fields.len() == 1 => {
            let f = &fields[0];
            let _ = write!(code, "::serde::Serialize::serialize(&self.{f})");
        }
        Body::Struct(Fields::Named(fields)) => {
            code.push_str("::serde::Value::Object(::std::vec![");
            for f in fields {
                let _ = write!(
                    code,
                    "(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::serialize(&self.{f})),"
                );
            }
            code.push_str("])");
        }
        Body::Struct(Fields::Tuple(1)) => {
            code.push_str("::serde::Serialize::serialize(&self.0)");
        }
        Body::Struct(Fields::Tuple(n)) => {
            code.push_str("::serde::Value::Array(::std::vec![");
            for i in 0..*n {
                let _ = write!(code, "::serde::Serialize::serialize(&self.{i}),");
            }
            code.push_str("])");
        }
        Body::Struct(Fields::Unit) => {
            code.push_str("::serde::Value::Null");
        }
        Body::Enum(variants) => {
            code.push_str("match self {");
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        let _ = write!(
                            code,
                            "{name}::{vname} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vname}\")),"
                        );
                    }
                    Fields::Tuple(1) => {
                        let _ = write!(
                            code,
                            "{name}::{vname}(x0) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Serialize::serialize(x0))]),"
                        );
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let _ = write!(
                            code,
                            "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Value::Array(::std::vec![",
                            binds.join(", ")
                        );
                        for b in &binds {
                            let _ = write!(code, "::serde::Serialize::serialize({b}),");
                        }
                        code.push_str("]))]),");
                    }
                    Fields::Named(fields) => {
                        let _ = write!(code, "{name}::{vname} {{ {} }} => ", fields.join(", "));
                        let _ = write!(
                            code,
                            "::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Value::Object(::std::vec!["
                        );
                        for f in fields {
                            let _ = write!(
                                code,
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::serialize({f})),"
                            );
                        }
                        code.push_str("]))]),");
                    }
                }
            }
            code.push('}');
        }
    }
    code.push_str(" } }");
    code
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut code = String::new();
    let _ = write!(
        code,
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn deserialize(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ "
    );
    match &item.body {
        Body::Struct(Fields::Named(fields)) if item.transparent && fields.len() == 1 => {
            let f = &fields[0];
            let _ = write!(
                code,
                "::std::result::Result::Ok({name} {{ {f}: \
                 ::serde::Deserialize::deserialize(v)? }})"
            );
        }
        Body::Struct(Fields::Named(fields)) => {
            let _ = write!(
                code,
                "match v {{ ::serde::Value::Object(fields) => \
                 ::std::result::Result::Ok({name} {{ "
            );
            for f in fields {
                let _ = write!(code, "{f}: ::serde::field(fields, \"{f}\")?, ");
            }
            let _ = write!(
                code,
                "}}), _ => ::std::result::Result::Err(::serde::DeError(\
                 ::std::format!(\"expected object for `{name}`\"))) }}"
            );
        }
        Body::Struct(Fields::Tuple(1)) => {
            let _ = write!(
                code,
                "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(v)?))"
            );
        }
        Body::Struct(Fields::Tuple(n)) => {
            let _ = write!(
                code,
                "match v {{ ::serde::Value::Array(items) if items.len() == {n} => \
                 ::std::result::Result::Ok({name}("
            );
            for i in 0..*n {
                let _ = write!(code, "::serde::Deserialize::deserialize(&items[{i}])?, ");
            }
            let _ = write!(
                code,
                ")), _ => ::std::result::Result::Err(::serde::DeError(\
                 ::std::format!(\"expected array of {n} for `{name}`\"))) }}"
            );
        }
        Body::Struct(Fields::Unit) => {
            let _ = write!(code, "::std::result::Result::Ok({name})");
        }
        Body::Enum(variants) => {
            // Unit variants arrive as strings; payload variants as
            // single-entry objects.
            code.push_str("match v { ::serde::Value::Str(s) => match s.as_str() {");
            for v in variants {
                if matches!(v.fields, Fields::Unit) {
                    let vname = &v.name;
                    let _ = write!(
                        code,
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                    );
                }
            }
            let _ = write!(
                code,
                "other => ::std::result::Result::Err(::serde::DeError(\
                 ::std::format!(\"unknown variant `{{other}}` of `{name}`\"))) }},"
            );
            code.push_str(
                "::serde::Value::Object(entries) if entries.len() == 1 => { \
                 let (tag, inner) = &entries[0]; match tag.as_str() {",
            );
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {}
                    Fields::Tuple(1) => {
                        let _ = write!(
                            code,
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::deserialize(inner)?)),"
                        );
                    }
                    Fields::Tuple(n) => {
                        let _ = write!(
                            code,
                            "\"{vname}\" => match inner {{ \
                             ::serde::Value::Array(items) if items.len() == {n} => \
                             ::std::result::Result::Ok({name}::{vname}("
                        );
                        for i in 0..*n {
                            let _ =
                                write!(code, "::serde::Deserialize::deserialize(&items[{i}])?, ");
                        }
                        let _ = write!(
                            code,
                            ")), _ => ::std::result::Result::Err(::serde::DeError(\
                             ::std::format!(\"expected array payload for \
                             `{name}::{vname}`\"))) }},"
                        );
                    }
                    Fields::Named(fields) => {
                        let _ = write!(
                            code,
                            "\"{vname}\" => match inner {{ \
                             ::serde::Value::Object(fields) => \
                             ::std::result::Result::Ok({name}::{vname} {{ "
                        );
                        for f in fields {
                            let _ = write!(code, "{f}: ::serde::field(fields, \"{f}\")?, ");
                        }
                        let _ = write!(
                            code,
                            "}}), _ => ::std::result::Result::Err(::serde::DeError(\
                             ::std::format!(\"expected object payload for \
                             `{name}::{vname}`\"))) }},"
                        );
                    }
                }
            }
            let _ = write!(
                code,
                "other => ::std::result::Result::Err(::serde::DeError(\
                 ::std::format!(\"unknown variant `{{other}}` of `{name}`\"))) }} }},"
            );
            let _ = write!(
                code,
                "_ => ::std::result::Result::Err(::serde::DeError(\
                 ::std::format!(\"expected string or tagged object for `{name}`\"))) }}"
            );
        }
    }
    code.push_str(" } }");
    code
}

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}
