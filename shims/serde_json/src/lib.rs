//! Offline stand-in for `serde_json`.
//!
//! Thin text layer over the vendored `serde` shim's [`Value`] model:
//! [`to_string`], [`to_string_pretty`], and [`from_str`] with the same
//! call signatures the real crate exposes for the subset this workspace
//! uses.

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Serialization / deserialization failure.
#[derive(Debug)]
pub struct Error(serde::DeError);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e)
    }
}

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Infallible for the shim's data model; the `Result` mirrors the real
/// crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::json::write(&value.serialize(), &mut out);
    Ok(out)
}

/// Serializes a value as pretty JSON (two-space indent).
///
/// # Errors
///
/// Infallible for the shim's data model; the `Result` mirrors the real
/// crate's signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::json::write_pretty(&value.serialize(), &mut out);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = serde::json::parse(text)?;
    Ok(T::deserialize(&value)?)
}
