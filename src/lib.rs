//! `edge-market` — a complete reproduction of *Incentivizing
//! Microservices for Online Resource Sharing in Edge Clouds* (Samanta,
//! Jiao, Mühlhäuser, Wang — IEEE ICDCS 2019) as a Rust workspace.
//!
//! This umbrella crate re-exports the whole stack under one roof:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`common`] | `edge-common` | ids, `Price`/`Resource` newtypes, seeded RNG |
//! | [`lp`] | `edge-lp` | simplex, branch-and-bound, covering DP (offline optima) |
//! | [`workload`] | `edge-workload` | §V-A samplers, request traces, parameter pack |
//! | [`sim`] | `edge-sim` | edge clouds, fair sharing, queues, metrics |
//! | [`demand`] | `edge-demand` | §III demand estimation with AHP weights |
//! | [`auction`] | `edge-auction` | SSAM, MSOA, variants, baselines, property audits |
//! | [`bench`](mod@bench) | `edge-bench` | per-figure experiment runners and generators |
//!
//! # Quick start
//!
//! ```
//! use edge_market::auction::bid::Bid;
//! use edge_market::auction::ssam::{run_ssam, SsamConfig};
//! use edge_market::auction::wsp::WspInstance;
//! use edge_market::common::id::{BidId, MicroserviceId};
//!
//! # fn main() -> Result<(), edge_market::auction::AuctionError> {
//! // Three microservices offer spare resources; the platform needs 5u.
//! let bids = vec![
//!     Bid::new(MicroserviceId::new(0), BidId::new(0), 3, 6.0)?,
//!     Bid::new(MicroserviceId::new(1), BidId::new(0), 2, 3.0)?,
//!     Bid::new(MicroserviceId::new(2), BidId::new(0), 4, 10.0)?,
//! ];
//! let outcome = run_ssam(&WspInstance::new(5, bids)?, &SsamConfig::default())?;
//! assert!(outcome.winners.iter().all(|w| w.payment >= w.price));
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for end-to-end scenarios, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the paper-vs-measured record.

#![forbid(unsafe_code)]

pub use edge_auction as auction;
pub use edge_bench as bench;
pub use edge_common as common;
pub use edge_demand as demand;
pub use edge_lp as lp;
pub use edge_sim as sim;
pub use edge_workload as workload;
