//! Cross-crate integration tests: the full pipeline of the paper, from
//! workload generation through simulation, demand estimation, and the
//! online auction.

use edge_market::auction::msoa::{run_msoa, MsoaConfig};
use edge_market::auction::offline::offline_optimum_multi;
use edge_market::auction::properties::check_individual_rationality;
use edge_market::auction::recovery::{run_msoa_with_faults, FaultPlan, RecoveryConfig};
use edge_market::auction::service::{
    fnv1a64, parse_log, AuctionService, LogWriter, ServiceConfig, ServiceEvent,
};
use edge_market::auction::ssam::{run_ssam, SsamConfig};
use edge_market::auction::variants::{run_variant, MsoaVariant};
use edge_market::bench::scenario::{
    integrated_instance, multi_round_instance, single_round_instance,
};
use edge_market::common::rng::derive_rng;
use edge_market::common::units::Resource;
use edge_market::demand::{DemandConfig, DemandEstimator};
use edge_market::lp::IlpOptions;
use edge_market::sim::engine::{SimConfig, Simulation};
use edge_market::workload::params::PaperParams;
use edge_market::workload::trace::{RequestTrace, TraceConfig};

#[test]
fn workload_to_simulation_to_estimation() {
    let mut rng = derive_rng(1, "e2e-sim");
    let trace = RequestTrace::generate(
        TraceConfig {
            num_microservices: 10,
            rounds: 6,
            ..TraceConfig::default()
        },
        &mut rng,
    );
    let total = trace.total_requests();
    let mut sim = Simulation::new(
        trace,
        SimConfig {
            num_clouds: 2,
            cloud_capacity: 8.0,
        },
    );
    let hub = sim.metrics();
    sim.run_to_end();

    // Every request is accounted for across the metrics.
    let last = hub.at_round(edge_market::common::id::Round::new(5));
    let received: u64 = last.iter().map(|m| m.received_total).sum();
    assert_eq!(received as usize, total);

    // The estimator produces finite non-negative demands for all rows.
    let estimator = DemandEstimator::new(DemandConfig::default());
    for d in estimator.estimate_round(&last, 6) {
        assert!(d.demand.is_finite() && d.demand >= 0.0, "{d:?}");
    }
}

#[test]
fn integrated_market_clears_and_stays_rational() {
    let params = PaperParams::default().with_microservices(10).with_rounds(8);
    let mut rng = derive_rng(2, "e2e-market");
    let instance = integrated_instance(
        &params,
        SimConfig {
            num_clouds: 2,
            cloud_capacity: 6.0,
        },
        &mut rng,
    );
    let out = run_msoa(&instance, &MsoaConfig::default()).unwrap();
    assert_eq!(out.rounds.len(), 8);
    for (s, seller) in instance.sellers().iter().enumerate() {
        assert!(out.chi[s] <= seller.capacity);
    }
    for r in &out.rounds {
        for w in &r.winners {
            assert!(w.payment >= w.scaled_price, "IR on scaled prices: {w:?}");
        }
    }
}

#[test]
fn ssam_outcome_beats_baselines_and_matches_certificate() {
    let params = PaperParams::default().with_microservices(20);
    for seed in 0..5 {
        let mut rng = derive_rng(seed, "e2e-ssam");
        let inst = single_round_instance(&params, &mut rng);
        let outcome = run_ssam(&inst, &SsamConfig::default()).unwrap();
        assert!(check_individual_rationality(&outcome));

        // Price-greedy ablation never beats SSAM on social cost.
        let greedy = edge_market::auction::baselines::run_price_greedy(&inst).unwrap();
        assert!(
            outcome.social_cost.value() <= greedy.social_cost.value() + 1e-9,
            "seed {seed}: ssam {} greedy {}",
            outcome.social_cost.value(),
            greedy.social_cost.value()
        );

        // Certificate sandwich against the exact optimum.
        let opt = inst.to_group_cover().solve_exact().unwrap().cost;
        assert!(outcome.certificate.dual_objective <= opt + 1e-9);
        assert!(outcome.social_cost.value() / opt <= outcome.certificate.pi + 1e-9);
    }
}

#[test]
fn msoa_variants_order_sensibly_on_noisy_estimates() {
    let params = PaperParams::default().with_microservices(12);
    let mut worse = 0;
    let trials = 8;
    for seed in 0..trials {
        let mut rng = derive_rng(seed, "e2e-variants");
        let inst = multi_round_instance(&params, 0.3, &mut rng);
        let plain = run_variant(&inst, &MsoaConfig::default(), MsoaVariant::Plain).unwrap();
        let da = run_variant(&inst, &MsoaConfig::default(), MsoaVariant::DemandAware).unwrap();
        if da.social_cost.value() > plain.social_cost.value() + 1e-9 {
            worse += 1;
        }
    }
    // The noisy estimator over-provisions, so perfect demand estimation
    // buys no more than the plain variant except for rare capacity
    // interactions across rounds.
    assert!(worse <= trials / 4, "DA worse in {worse}/{trials} trials");
}

#[test]
fn online_never_beats_offline() {
    let params = PaperParams::default().with_microservices(6).with_rounds(4);
    for seed in 0..5 {
        let mut rng = derive_rng(seed, "e2e-offline");
        let inst = multi_round_instance(&params, 0.0, &mut rng);
        let out = run_msoa(&inst, &MsoaConfig::default()).unwrap();
        if !out.infeasible_rounds().is_empty() {
            continue;
        }
        let Ok(off) = offline_optimum_multi(&inst, true, &IlpOptions::default()) else {
            continue;
        };
        assert!(
            out.social_cost.value() >= off.value() - 1e-6,
            "seed {seed}: online {} below offline {}",
            out.social_cost.value(),
            off.value()
        );
    }
}

#[test]
fn simulation_transfers_follow_auction_outcomes() {
    // A compact version of the autoscale example, asserting the wiring:
    // auction winners' transfers are accepted by the simulator.
    let mut rng = derive_rng(3, "e2e-transfer");
    let trace = RequestTrace::generate(
        TraceConfig {
            num_microservices: 6,
            rounds: 4,
            sensitive_fraction: 1.0,
            target_requests_per_round: Some(120),
            ..TraceConfig::default()
        },
        &mut rng,
    );
    let mut sim = Simulation::new(
        trace,
        SimConfig {
            num_clouds: 1,
            cloud_capacity: 12.0,
        },
    );
    let hot = edge_market::common::id::MicroserviceId::new(0);
    while let Some(_round) = sim.step() {
        let mut bids = Vec::new();
        for m in 1..6 {
            let ms = edge_market::common::id::MicroserviceId::new(m);
            let spare = sim.spare_of(ms).unwrap().value().floor() as u64;
            if spare >= 1 {
                bids.push(
                    edge_market::auction::bid::Bid::new(
                        ms,
                        edge_market::common::id::BidId::new(0),
                        spare,
                        3.0 * spare as f64,
                    )
                    .unwrap(),
                );
            }
        }
        let Ok(inst) = edge_market::auction::wsp::WspInstance::new(2.min(bids.len() as u64), bids)
        else {
            continue;
        };
        if let Ok(outcome) = run_ssam(&inst, &SsamConfig::default()) {
            for w in &outcome.winners {
                sim.schedule_transfer(w.seller, hot, Resource::new(w.contribution as f64).unwrap())
                    .unwrap();
            }
        }
    }
    // The run completed with transfers applied; hot service exists.
    assert!(sim.service(hot).is_ok());
}

#[test]
fn empty_event_log_service_is_bit_identical_to_plain_msoa() {
    // The event-sourced service driven by round closes alone — an
    // "empty" log, no wire events — must reproduce, stage for stage,
    // a direct empty-fault-plan recovery run on the same instances;
    // and that run in turn must be bit-identical to plain MSOA. This
    // chains the service on top of the long-standing empty-plan ⇒
    // plain-MSOA invariant.
    let config = ServiceConfig {
        seed: 9,
        microservices: 8,
        requests: 50,
        total_rounds: 4,
        stage_rounds: 2,
        book_cap: 64,
        demand_cap: 1000,
    };
    let provider = |stage: u64, rounds: u64| {
        // The CLI's seeded stage contract, replicated through the
        // public facade: stage k is `integrated_instance` on the paper
        // parameters, seeded `derive_rng(seed + k, "cli-serve")`.
        let params = PaperParams::default()
            .with_microservices(config.microservices)
            .with_rounds(rounds)
            .with_requests(config.requests);
        let mut rng = derive_rng(config.seed.wrapping_add(stage), "cli-serve");
        integrated_instance(&params, SimConfig::default(), &mut rng)
    };

    // Drive the service with nothing but round closes, logging as the
    // daemon would.
    let mut svc = AuctionService::new(config, provider);
    let mut buf = Vec::new();
    let mut log = LogWriter::new(&mut buf, &config).expect("header");
    let mut stage_digests = Vec::new();
    for _ in 0..config.total_rounds {
        let applied = svc.apply(&ServiceEvent::RoundClosed, None).expect("close");
        log.append(&ServiceEvent::RoundClosed).expect("append");
        if let Some(stage) = applied.stage {
            stage_digests.push(stage.outcome_digest);
        }
    }
    assert!(svc.horizon_complete());
    assert_eq!(stage_digests.len(), 2, "4 rounds at 2 per stage");

    // Each stage digest must equal a direct empty-plan recovery run —
    // which itself must match plain MSOA bit for bit.
    for (stage, digest) in stage_digests.iter().enumerate() {
        let instance = provider(stage as u64, config.stage_rounds);
        let faulty = run_msoa_with_faults(
            &instance,
            &MsoaConfig::pinned(2.0),
            &FaultPlan::empty(),
            &RecoveryConfig::default(),
        )
        .expect("recovery run");
        let direct = format!(
            "{:016x}",
            fnv1a64(
                serde_json::to_string(&faulty)
                    .expect("serialize")
                    .as_bytes()
            )
        );
        assert_eq!(&direct, digest, "stage {stage} digest diverged");

        let plain = run_msoa(&instance, &MsoaConfig::pinned(2.0)).expect("plain msoa");
        assert_eq!(faulty.chi, plain.chi, "stage {stage}: χ diverged");
        assert_eq!(
            faulty.psi.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            plain.psi.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            "stage {stage}: ψ diverged"
        );
        assert_eq!(
            faulty.social_cost.value().to_bits(),
            plain.social_cost.value().to_bits(),
            "stage {stage}: social cost diverged"
        );
    }

    // And the log round-trips: parse, replay, same digests.
    let text = String::from_utf8(buf).expect("utf8");
    let parsed = parse_log(&text, false).expect("chain verifies");
    assert_eq!(parsed.records.len() as u64, config.total_rounds);
    let mut replayed = AuctionService::new(parsed.config, provider);
    replayed.apply_all(&parsed.records, None).expect("replay");
    assert_eq!(replayed.state_digest_hex(), svc.state_digest_hex());
    assert_eq!(
        replayed.last_outcome_digest_hex(),
        svc.last_outcome_digest_hex()
    );
}
