//! Integration tests for the extension modules: budgets, demand
//! smoothing, bursty workloads, failure injection, and the multi-buyer
//! general form.

use edge_market::auction::budget::{required_budget, run_budgeted_ssam};
use edge_market::auction::multi_buyer::{run_ssam_multi, CoverBid, MultiBuyerWsp};
use edge_market::auction::ssam::SsamConfig;
use edge_market::bench::scenario::single_round_instance;
use edge_market::common::id::{BidId, EdgeCloudId, MicroserviceId, Round};
use edge_market::common::rng::derive_rng;
use edge_market::common::units::{Price, Resource};
use edge_market::demand::{DemandConfig, DemandEstimator, SmoothedEstimator};
use edge_market::sim::engine::{SimConfig, Simulation};
use edge_market::sim::events::{EventSchedule, SimEvent};
use edge_market::workload::burst::{BurstConfig, BurstProcess};
use edge_market::workload::params::PaperParams;
use edge_market::workload::trace::{RequestTrace, TraceConfig};

#[test]
fn budget_sweep_is_monotone_on_real_instances() {
    let params = PaperParams::default().with_microservices(20);
    for seed in 0..5 {
        let mut rng = derive_rng(seed, "ext-budget");
        let inst = single_round_instance(&params, &mut rng);
        let need = required_budget(&inst, &SsamConfig::default()).unwrap();
        let mut last_covered = 0;
        for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let budget = Price::new(need.value() * frac).unwrap();
            let out = run_budgeted_ssam(&inst, &SsamConfig::default(), budget).unwrap();
            assert!(out.total_payment.value() <= budget.value() + 1e-9);
            assert!(out.covered >= last_covered, "coverage dipped at {frac}");
            last_covered = out.covered;
        }
        assert_eq!(last_covered, inst.demand(), "full budget must cover fully");
    }
}

#[test]
fn smoothed_estimator_tracks_the_simulation() {
    let mut rng = derive_rng(1, "ext-smooth");
    let trace = RequestTrace::generate(
        TraceConfig {
            num_microservices: 6,
            rounds: 10,
            ..TraceConfig::default()
        },
        &mut rng,
    );
    let mut sim = Simulation::new(
        trace,
        SimConfig {
            num_clouds: 2,
            cloud_capacity: 6.0,
        },
    );
    let hub = sim.metrics();
    let mut smooth = SmoothedEstimator::new(DemandEstimator::new(DemandConfig::default()), 0.3);
    let raw = DemandEstimator::new(DemandConfig::default());
    let mut max_jump_smooth = 0.0f64;
    let mut max_jump_raw = 0.0f64;
    let mut prev_s: Option<f64> = None;
    let mut prev_r: Option<f64> = None;
    while let Some(round) = sim.step() {
        let batch = hub.at_round(round);
        let s = smooth.observe(&batch, round.index() + 1)[0].demand;
        let r = raw.estimate_round(&batch, round.index() + 1)[0].demand;
        if let (Some(ps), Some(pr)) = (prev_s, prev_r) {
            max_jump_smooth = max_jump_smooth.max((s - ps).abs());
            max_jump_raw = max_jump_raw.max((r - pr).abs());
        }
        prev_s = Some(s);
        prev_r = Some(r);
    }
    assert!(
        max_jump_smooth <= max_jump_raw + 1e-9,
        "smoothing must not amplify round-to-round jumps: {max_jump_smooth} vs {max_jump_raw}"
    );
    let _ = raw; // estimator is Copy-light; silence potential lints
}

#[test]
fn bursty_trace_stresses_but_does_not_break_the_market() {
    let mut rng = derive_rng(2, "ext-burst");
    let mut process = BurstProcess::new(BurstConfig::default());
    // Drive an auction demand series from the burst process and check
    // the market clears whenever supply suffices.
    let params = PaperParams::default().with_microservices(15);
    for round in 0..20 {
        let demand_draw = process.sample(&mut rng, 8.0);
        let inst = single_round_instance(&params, &mut rng);
        let demand = demand_draw.min(inst.max_supply()).max(1);
        let rebuilt =
            edge_market::auction::wsp::WspInstance::new(demand, inst.bids().copied().collect())
                .unwrap();
        let out = edge_market::auction::ssam::run_ssam(&rebuilt, &SsamConfig::default())
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        let covered: u64 = out.winners.iter().map(|w| w.contribution).sum();
        assert_eq!(covered, demand);
    }
}

#[test]
fn failure_injection_respects_capacity_at_all_times() {
    let mut rng = derive_rng(3, "ext-events");
    let trace = RequestTrace::generate(
        TraceConfig {
            num_microservices: 8,
            rounds: 10,
            ..TraceConfig::default()
        },
        &mut rng,
    );
    let mut sim = Simulation::new(
        trace,
        SimConfig {
            num_clouds: 2,
            cloud_capacity: 10.0,
        },
    );
    let mut events = EventSchedule::new();
    events
        .at(
            3,
            SimEvent::CapacityChange {
                cloud: EdgeCloudId::new(0),
                capacity: Resource::new(2.0).unwrap(),
            },
        )
        .at(
            5,
            SimEvent::PauseService {
                ms: MicroserviceId::new(0),
            },
        )
        .at(
            7,
            SimEvent::ResumeService {
                ms: MicroserviceId::new(0),
            },
        )
        .at(
            8,
            SimEvent::CapacityChange {
                cloud: EdgeCloudId::new(0),
                capacity: Resource::new(10.0).unwrap(),
            },
        );
    sim.set_events(events);
    let hub = sim.metrics();
    while let Some(round) = sim.step() {
        let batch = hub.at_round(round);
        // Allocation per cloud never exceeds the *current* capacity; we
        // can observe it through the metrics' max_allocation field and
        // per-service rows.
        let cloud0_alloc: f64 = batch
            .iter()
            .filter(|m| m.ms.index() % 2 == 0) // round-robin: even ids on cloud 0
            .map(|m| m.allocation)
            .sum();
        let cap = if (3..8).contains(&round.index()) {
            2.0
        } else {
            10.0
        };
        assert!(
            cloud0_alloc <= cap + 1e-6,
            "round {}: cloud 0 allocated {cloud0_alloc} over capacity {cap}",
            round.index()
        );
    }
}

#[test]
fn multi_buyer_general_form_handles_paper_scale() {
    let mut rng = derive_rng(4, "ext-multibuyer");
    use rand::Rng;
    // 25 sellers × 2 bids covering subsets of 12 buyers.
    let buyers: Vec<(MicroserviceId, u64)> = (0..12)
        .map(|b| (MicroserviceId::new(500 + b), rng.gen_range(1..=3u64)))
        .collect();
    let mut bids = Vec::new();
    for s in 0..25 {
        for j in 0..2 {
            let k = rng.gen_range(1..=3usize);
            let mut cov = Vec::new();
            for _ in 0..k {
                let b = rng.gen_range(0..12usize);
                if !cov
                    .iter()
                    .any(|&(id, _)| id == MicroserviceId::new(500 + b))
                {
                    cov.push((MicroserviceId::new(500 + b), rng.gen_range(1..=3u64)));
                }
            }
            let total: u64 = cov.iter().map(|&(_, a)| a).sum();
            bids.push(
                CoverBid::new(
                    MicroserviceId::new(s),
                    BidId::new(j),
                    cov,
                    rng.gen_range(10.0..35.0) * total as f64 / 5.0,
                )
                .unwrap(),
            );
        }
    }
    let inst = MultiBuyerWsp::new(buyers, bids).unwrap();
    let out = run_ssam_multi(&inst, &SsamConfig::default());
    assert!(out.fully_covered, "25 sellers over 12 buyers should cover");
    for w in &out.winners {
        assert!(w.payment >= w.price);
    }
}

#[test]
fn placement_strategies_change_market_structure() {
    use edge_market::sim::placement::Placement;
    let mk = |strategy| {
        let mut rng = derive_rng(5, "ext-placement");
        let trace = RequestTrace::generate(
            TraceConfig {
                num_microservices: 9,
                rounds: 3,
                ..TraceConfig::default()
            },
            &mut rng,
        );
        Simulation::with_placement(
            trace,
            SimConfig {
                num_clouds: 3,
                cloud_capacity: 8.0,
            },
            strategy,
        )
    };
    // Packed placement concentrates everyone on the first cloud.
    let packed = mk(Placement::Packed { per_cloud: 9 });
    // Every cross-service transfer is legal there…
    let mut packed = packed;
    packed.step();
    assert!(packed
        .schedule_transfer(
            MicroserviceId::new(0),
            MicroserviceId::new(8),
            Resource::new(0.1).unwrap()
        )
        .is_ok());
    // …while round-robin spreads services so some pairs cannot trade.
    let mut rr = mk(Placement::RoundRobin);
    rr.step();
    assert!(rr
        .schedule_transfer(
            MicroserviceId::new(0),
            MicroserviceId::new(1),
            Resource::new(0.1).unwrap()
        )
        .is_err());
    // Random placement is reproducible per seed.
    let a = mk(Placement::Random { seed: 11 });
    let b = mk(Placement::Random { seed: 11 });
    assert_eq!(
        a.service(MicroserviceId::new(4)).unwrap().cloud(),
        b.service(MicroserviceId::new(4)).unwrap().cloud()
    );
}

#[test]
fn round_type_threads_through_all_crates() {
    // A smoke test that the shared vocabulary types interoperate.
    let r = Round::new(3);
    assert!(r.within(Round::ZERO, Round::new(5)));
    let p = Price::new(2.5).unwrap() + Price::new(1.5).unwrap();
    assert_eq!(p, Price::new(4.0).unwrap());
    let res = Resource::new(3.0)
        .unwrap()
        .saturating_sub(Resource::new(5.0).unwrap());
    assert_eq!(res, Resource::ZERO);
}
